"""Per-round equivalence suite for incremental state-space maintenance.

The tentpole invariant: after every accepted signal-insertion round,
``StateSpace.apply_insertion(edit)`` answers every protocol query exactly
as a cold build of the edited STG would -- state and code counts, the
reachable code words, every per-signal ER/QR/on/off set and size, the
USC/CSC reports, the conflict signature groups, and the extracted covers
(semantically).  The suite drives real resolution rounds -- conflict cores,
legal-region enumeration, separation-gain ranking, strict
conflict-pair-reduction acceptance, exactly like ``resolve_csc`` -- across
the Table 1 suite, the VME bus controller and the ``csc_arbiter``
generators, on both engines and (for the explicit engine) both BFS
kernels.

On top of the per-round equivalence this file pins the supporting
machinery: ``resolve_csc(incremental=True)`` returns the same resolution
as ``incremental=False``, the structural version stamps invalidate the
``graph_arrays`` kernel cache and ``PackedNet``, and the incompatible-edit
paths fall back to a cold build instead of mis-extending.
"""

import pytest

from repro.encoding import (
    conflict_cores,
    make_insertion_edit,
    num_conflict_pairs,
    resolve_csc,
    separation_gain,
)
from repro.encoding.insertion import fresh_signal_name
from repro.encoding.regions import candidate_regions
from repro.spaces import build_state_space
from repro.stategraph import (
    InconsistentSTGError,
    build_state_graph,
    extend_state_graph,
)
from repro.stg import csc_arbiter, table1_suite, vme_bus_controller
from repro.stg.signals import Direction

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(HAVE_NUMPY is False, reason="numpy not installed")


def _specs():
    """(id, builder) pairs: Table 1 + VME bus + the arbiter generators."""
    pairs = [(entry.name, entry.build) for entry in table1_suite()]
    pairs.append(("vme_read", vme_bus_controller))
    pairs.append(("csc_arbiter_4", lambda: csc_arbiter(4)))
    pairs.append(("csc_arbiter_8", lambda: csc_arbiter(8)))
    return pairs


SPECS = _specs()
BUILDERS = dict(SPECS)

# engine, kernel pairs exercised by the per-round equivalence tests
CONFIGS = [
    pytest.param("explicit", "python", id="explicit-python"),
    pytest.param("explicit", "numpy", id="explicit-numpy", marks=needs_numpy),
    pytest.param("bdd", None, id="bdd"),
]

# The naive "first positive-gain region" driver provably diverges on
# csc_arbiter(4) (it lacks resolve_csc's strict pair-reduction check),
# so rounds are bounded and acceptance mirrors the resolution loop.
MAX_ROUNDS = 2
MAX_CANDIDATES = 16


def _next_edit(stg, graph):
    """One resolution round's accepted edit, or ``None``.

    Mirrors ``resolve_csc``'s acceptance policy -- rank legal regions by
    separation gain against the conflict cores and accept the first that
    strictly reduces the conflicting pairs on its cold-rebuilt graph --
    without the logic-cost espresso tie-break (cost ranking is not under
    test here).  On a CSC-clean graph any consistent legal region is
    accepted: a clean spec still has to survive an insertion unchanged.
    """
    cores = conflict_cores(graph)
    regions = candidate_regions(graph)
    signal = fresh_signal_name(stg)
    if cores:
        current = num_conflict_pairs(cores)
        scored = []
        for region in regions:
            gain = sum(separation_gain(core, region.mask_on) for core in cores)
            if gain > 0:
                scored.append((gain, region))
        scored.sort(key=lambda item: -item[0])
        for _gain, region in scored[:MAX_CANDIDATES]:
            edit = make_insertion_edit(stg, region, signal)
            try:
                candidate = build_state_graph(edit.stg)
            except InconsistentSTGError:
                continue
            if num_conflict_pairs(conflict_cores(candidate)) < current:
                return edit
        return None
    for region in regions[:MAX_CANDIDATES]:
        edit = make_insertion_edit(stg, region, signal)
        try:
            build_state_graph(edit.stg)
        except InconsistentSTGError:
            continue
        return edit
    return None


def _assert_equivalent(incremental, cold, stg):
    """The incremental space answers every protocol query like the cold one."""
    assert incremental.num_states == cold.num_states
    assert incremental.num_codes == cold.num_codes
    assert incremental.reachable_code_words() == cold.reachable_code_words()
    for signal in stg.signals:
        for direction in (Direction.PLUS, Direction.MINUS):
            assert incremental.er_codes(signal, direction) == cold.er_codes(
                signal, direction
            ), (signal, direction)
            assert incremental.er_size(signal, direction) == cold.er_size(
                signal, direction
            ), (signal, direction)
        for value in (0, 1):
            assert incremental.quiescent_codes(
                signal, value
            ) == cold.quiescent_codes(signal, value), (signal, value)
        assert incremental.on_codes(signal) == cold.on_codes(signal), signal
        assert incremental.off_codes(signal) == cold.off_codes(signal), signal
        assert incremental.on_size(signal) == cold.on_size(signal), signal
        assert incremental.off_size(signal) == cold.off_size(signal), signal
    for kind in ("check_usc", "check_csc"):
        left = getattr(incremental, kind)()
        right = getattr(cold, kind)()
        assert left.satisfied == right.satisfied, kind
        assert left.num_pairs == right.num_pairs, kind
        assert left.conflict_code_words == right.conflict_code_words, kind
        assert left.conflicting_signals == right.conflicting_signals, kind
    assert incremental.signature_groups() == cold.signature_groups()


def _assert_covers_equivalent(incremental, cold, stg):
    """Both spaces' covers accept exactly the same reachable minterms."""
    words = sorted(cold.reachable_code_words())
    for signal in stg.implementable_signals:
        for kind in ("on_cover", "off_cover"):
            left = getattr(incremental, kind)(signal)
            right = getattr(cold, kind)(signal)
            for word in words:
                assert any(c.covers_minterm(word) for c in left) == any(
                    c.covers_minterm(word) for c in right
                ), (signal, kind, word)


@pytest.mark.parametrize("engine,kernel", CONFIGS)
@pytest.mark.parametrize("name", [name for name, _build in SPECS])
def test_apply_insertion_matches_cold_rebuild_per_round(name, engine, kernel):
    stg = BUILDERS[name]()
    space = build_state_space(stg, engine=engine, kernel=kernel)
    for _round in range(MAX_ROUNDS):
        # Derive the edit from the *incremental* space's own graph: its
        # state numbering is what the region phase masks index.  The
        # symbolic engine has no graph; a cold one stands in (masks are
        # not consumed on that path).
        graph = space.explicit_graph
        if graph is None:
            graph = build_state_graph(stg)
        edit = _next_edit(stg, graph)
        if edit is None:
            break
        space = space.apply_insertion(edit)
        cold = build_state_space(edit.stg, engine=engine, kernel=kernel)
        _assert_equivalent(space, cold, edit.stg)
        _assert_covers_equivalent(space, cold, edit.stg)
        stg = edit.stg
        if not conflict_cores(graph):
            break  # clean spec: one survived insertion is the point


@pytest.mark.parametrize("engine,kernel", CONFIGS)
def test_incremental_stats_surface(engine, kernel):
    """Accepted incremental rounds report their dirty-region size."""
    stg = vme_bus_controller()
    space = build_state_space(stg, engine=engine, kernel=kernel)
    graph = space.explicit_graph
    if graph is None:
        graph = build_state_graph(stg)
    edit = _next_edit(stg, graph)
    assert edit is not None
    grown = space.apply_insertion(edit)
    stats = grown.incremental_stats
    if engine == "explicit":
        assert stats["survivors"] == space.num_states
        assert stats["new_states"] == grown.num_states - space.num_states
        assert stats["states_reexplored"] >= stats["new_states"]
        assert stats["frontier_edges"] > 0
    else:
        assert stats["seeded"] is True
        assert stats["nodes_touched"] > 0
        assert stats["fixpoint_rounds"] > 0


@pytest.mark.parametrize("name", ["vme_read", "csc_arbiter_4"])
def test_resolve_csc_incremental_parity(name):
    """The accepted resolution is mode-independent; only the cost differs."""
    stg = BUILDERS[name]()
    fast = resolve_csc(stg, max_signals=3, seed=0, incremental=True)
    cold = resolve_csc(BUILDERS[name](), max_signals=3, seed=0, incremental=False)
    assert fast.inserted == cold.inserted
    assert fast.resolved == cold.resolved
    assert fast.conflicts_before == cold.conflicts_before
    assert fast.conflicts_after == cold.conflicts_after
    assert fast.graph.num_states == cold.graph.num_states
    assert sorted(fast.graph.packed_codes) == sorted(cold.graph.packed_codes)
    # the fast path actually ran, and the cold path never claims it did
    assert fast.rounds_incremental == len(fast.inserted) > 0
    assert fast.states_reexplored is not None
    assert all(n >= 1 for n in fast.states_reexplored)
    assert cold.rounds_incremental == 0
    assert cold.states_reexplored is None


@needs_numpy
def test_incremental_kernels_build_identical_graphs():
    """python and numpy dirty-region BFS agree state-for-state."""
    stg = vme_bus_controller()
    graph = build_state_graph(stg)
    edit = _next_edit(stg, graph)
    assert edit is not None
    by_kernel = {}
    for kernel in ("python", "numpy"):
        grown = extend_state_graph(graph, edit, kernel=kernel)
        assert grown is not None
        by_kernel[kernel] = grown
    left, right = by_kernel["python"], by_kernel["numpy"]
    assert left.packed_codes == right.packed_codes
    assert left._packed_markings == right._packed_markings
    assert sorted(left.edges) == sorted(right.edges)
    assert left.incremental_stats == right.incremental_stats


def test_extend_falls_back_on_incompatible_graphs():
    """Legacy (unpacked) graphs and mask-less edits refuse the fast path."""
    stg = vme_bus_controller()
    graph = build_state_graph(stg)
    edit = _next_edit(stg, graph)
    assert edit is not None
    legacy = build_state_graph(stg, packed=False)
    assert extend_state_graph(legacy, edit) is None
    from repro.spaces import InsertionEdit

    maskless = InsertionEdit(
        edit.stg,
        edit.signal,
        edit.t_on,
        edit.t_off,
        edit.initial_value,
        phase_mask=None,
        new_places=edit.new_places,
    )
    assert extend_state_graph(graph, maskless) is None
    # the protocol still delivers a correct space through the fallback
    space = build_state_space(stg, engine="explicit")
    cold = build_state_space(edit.stg, engine="explicit")
    _assert_equivalent(space.apply_insertion(maskless), cold, edit.stg)


def test_structural_version_stamps():
    """Net mutators bump the version; PackedNet notices it is stale."""
    from repro.core import PackedNet

    stg = vme_bus_controller()
    net = stg.net
    before = net.structural_version
    pnet = PackedNet(net)
    assert not pnet.is_stale()
    net.add_place("extra_place")
    assert net.structural_version > before
    assert pnet.is_stale()
    version = net.structural_version
    net.add_transition("extra_t")
    net.add_arc("extra_place", "extra_t")
    net.set_initial_tokens("extra_place", 1)
    assert net.structural_version >= version + 3


@needs_numpy
def test_graph_arrays_refresh_after_mutation():
    """An edge-only mutation invalidates the cached kernel arrays."""
    from repro.kernel.bitset import _int_keys, graph_arrays

    stg = vme_bus_controller()
    graph = build_state_graph(stg, kernel="python")
    codes, plus, minus = graph_arrays(graph)
    assert _int_keys(plus) == graph._excited_plus
    # splice in an edge for an already-fired transition: state 0 gains
    # the corresponding excitation bit only if the arrays are rebuilt
    _source, transition, _target = graph.edges[0]
    before = graph._version
    graph._add_edge(0, transition, 0)
    assert graph._version > before
    codes2, plus2, minus2 = graph_arrays(graph)
    assert _int_keys(plus2) == graph._excited_plus
    assert _int_keys(minus2) == graph._excited_minus


def test_symbolic_seeding_rejected_after_fixpoint():
    """seed_states is a pre-fixpoint operation by contract."""
    from repro.bdd import SymbolicNet

    stg = vme_bus_controller()
    engine = SymbolicNet(stg.net, stg=stg)
    engine.reachable_set()  # forces the fixed point
    with pytest.raises(RuntimeError):
        engine.seed_states(engine.bdd.FALSE)
