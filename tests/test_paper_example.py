"""End-to-end checks of the paper's worked example (Figures 1-4, Section 4).

These tests pin the reproduction to the numbers printed in the paper: the
eight states of Figure 1(c), the instance structure of the segment of
Figure 2, the slice partitioning of Figure 3 and the covers of Section 4.1.
"""

from repro.boolean import espresso
from repro.stategraph import SignalRegions, build_state_graph, dc_set_cover
from repro.stg import paper_example
from repro.synthesis import (
    approximate_signal_covers,
    exact_signal_covers,
    synthesize,
)
from repro.unfolding import check_semimodularity, on_slices, unfold


def test_figure1_state_graph():
    graph = build_state_graph(paper_example())
    assert graph.num_states == 8
    assert graph.num_edges == 10
    by_marking = {frozenset(m.places): "".join(map(str, c))
                  for m, c in zip(graph.markings, graph.codes)}
    assert by_marking[frozenset({"p1"})] == "000"
    assert by_marking[frozenset({"p2", "p3"})] == "100"
    assert by_marking[frozenset({"p3", "p5"})] == "110"
    assert by_marking[frozenset({"p2", "p6", "p8"})] == "101"
    assert by_marking[frozenset({"p5", "p6", "p8"})] == "111"
    assert by_marking[frozenset({"p7", "p8"})] == "011"
    assert by_marking[frozenset({"p4"})] == "001"
    assert by_marking[frozenset({"p9"})] == "010"


def test_figure1_on_and_off_sets_of_b():
    graph = build_state_graph(paper_example())
    regions = SignalRegions(graph, "b")
    on_cover = espresso(regions.on_cover, dc_set_cover(graph)).cover
    off_cover = espresso(regions.off_cover, dc_set_cover(graph)).cover
    assert on_cover.to_expression(graph.signals) == "a + c"
    assert off_cover.to_expression(graph.signals) == "a' c'"


def test_figure2_segment_instance_counts():
    segment = unfold(paper_example())
    by_signal = {
        signal: len(segment.events_of_signal(signal)) for signal in ("a", "b", "c")
    }
    # One instance of a+/a-, two of b+ and c+, one of b-/c- (Figure 2).
    assert by_signal == {"a": 2, "b": 3, "c": 3}
    assert len(segment.cutoffs) >= 1
    assert check_semimodularity(segment) == []


def test_figure3_slice_partitioning():
    segment = unfold(paper_example())
    slices = on_slices(segment, "b")
    assert len(slices) == 2
    state_sets = [
        {"".join(map(str, code)) for _m, code in s.states()} for s in slices
    ]
    assert {"001", "011"} in state_sets
    union = set().union(*state_sets)
    assert union == {"100", "110", "101", "111", "011", "001"}


def test_section41_exact_covers():
    segment = unfold(paper_example())
    on, off, conflict = exact_signal_covers(segment, "b")
    assert not conflict
    assert {c.to_string() for c in on} == {"100", "110", "101", "111", "011", "001"}
    assert {c.to_string() for c in off} == {"000", "010"}


def test_section42_approximation_is_already_correct():
    segment = unfold(paper_example())
    approx = approximate_signal_covers(segment, "b")
    on_exact, off_exact, _ = exact_signal_covers(segment, "b")
    assert approx.on_cover.contains_cover(on_exact)
    assert approx.off_cover.contains_cover(off_exact)


def test_final_implementation_is_a_plus_c():
    for method in ("unfolding-approx", "unfolding-exact", "sg-explicit", "sg-bdd"):
        result = synthesize(paper_example(), method=method)
        gate = result.implementation.gate_for("b")
        assert gate.function.to_expression() in ("a + c", "c + a")
        assert result.literal_count == 2
