"""Tests for the observability layer (repro.obs).

Pins the core guarantees of the tracing contract:

* span nesting/ordering reflects the call structure;
* counter trees are deterministic across identical runs (wall times and
  RSS live outside the counters);
* every instrumented call site works -- and stays silent -- under the
  default no-op tracer;
* exported traces over the Table 1 flow validate against the schema;
* the BENCH history stamping/merging/rendering round-trips.
"""

import json

import pytest

from repro.bdd import SymbolicNet
from repro.encoding import resolve_csc
from repro.flow import run_table1
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    TraceSchemaError,
    current_tracer,
    merge_history,
    render_dashboard,
    set_tracer,
    span_summary,
    stamp_report,
    tracing,
    validate_trace,
)
from repro.obs.dashboard import load_history
from repro.obs.schema import main as schema_main
from repro.sim import simulate_spec
from repro.stategraph import build_state_graph
from repro.stg import benchmark_by_name, csc_arbiter, muller_pipeline, write_g
from repro.stg.parser import parse_g
from repro.synthesis import synthesize
from repro.unfolding import unfold


# ---------------------------------------------------------------------- #
# Span / Tracer mechanics
# ---------------------------------------------------------------------- #
def test_span_nesting_and_ordering():
    tracer = Tracer("test")
    with tracer.span("outer", kind="demo") as outer:
        with tracer.span("first") as first:
            first.counter("hits")
        with tracer.span("second") as second:
            second.gauge("size", 7)
    tracer.finish()

    assert [child.name for child in tracer.root.children] == ["outer"]
    assert [child.name for child in outer.children] == ["first", "second"]
    assert outer.attrs == {"kind": "demo"}
    assert first.counters == {"hits": 1}
    assert second.counters == {"size": 7}
    # Children close before their parent; the parent covers them.
    assert outer.elapsed >= first.elapsed + second.elapsed - 1e-6
    assert tracer.root.elapsed >= outer.elapsed


def test_span_counter_gauge_maximum_series():
    span = Span("s")
    span.counter("n")
    span.counter("n", 4)
    span.gauge("g", 10)
    span.gauge("g", 3)
    span.maximum("m", 2)
    span.maximum("m", 9)
    span.maximum("m", 5)
    span.append("series", 1)
    span.append("series", 2)
    assert span.counters == {"n": 5, "g": 3, "m": 9}
    assert span.series == {"series": [1, 2]}


def test_find_and_walk():
    tracer = Tracer("t")
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("b"):
            pass
    assert tracer.root.find("b") is tracer.root.children[0].children[0]
    assert len(tracer.root.find_all("b")) == 2
    assert [span.name for span in tracer.root.walk()] == ["t", "a", "b", "b"]
    assert tracer.root.find("absent") is None


def test_tracing_context_restores_previous_tracer():
    assert current_tracer() is NULL_TRACER
    with tracing("outer") as outer_tracer:
        assert current_tracer() is outer_tracer
        inner = Tracer("inner")
        previous = set_tracer(inner)
        assert previous is outer_tracer
        assert current_tracer() is inner
        set_tracer(previous)
        assert current_tracer() is outer_tracer
    assert current_tracer() is NULL_TRACER
    # The context finished the root span.
    assert outer_tracer.root.elapsed > 0.0


def test_tracer_thread_local_stacks_under_contention():
    # Worker threads attach spans under the shared root via thread-local
    # stacks: under real contention no thread may ever see another
    # thread's span as its current one, and every span must land as a
    # direct child of the root with its own counters intact.
    import threading

    tracer = Tracer("root")
    barrier = threading.Barrier(8)
    errors = []

    def worker(i):
        try:
            barrier.wait()
            for j in range(100):
                with tracer.span("t%d" % i, iteration=j) as span:
                    assert tracer.current is span
                    span.counter("ticks")
                    with tracer.span("inner") as inner:
                        assert tracer.current is inner
                        inner.counter("ticks")
                    assert tracer.current is span
            assert tracer.current is tracer.root
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    top = [child for child in tracer.root.children]
    assert len(top) == 800
    for span in top:
        assert span.counters["ticks"] == 1
        assert len(span.children) == 1
    names = {span.name for span in top}
    assert names == {"t%d" % i for i in range(8)}


def test_null_tracer_is_inert_and_shared():
    assert current_tracer() is NULL_TRACER
    span = NULL_TRACER.span("anything", attr=1)
    assert span is NULL_SPAN
    assert span.live is False
    with span as entered:
        entered.counter("x")
        entered.gauge("y", 1)
        entered.maximum("z", 2)
        entered.append("s", 3)
    # The shared no-op span must never accumulate state.
    assert NULL_SPAN.counters == {}
    assert NULL_SPAN.series == {}
    assert NULL_SPAN.children == []


# ---------------------------------------------------------------------- #
# Instrumented call sites
# ---------------------------------------------------------------------- #
def _deterministic_tree(span):
    """The run-to-run comparable projection of a span tree."""
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
        "series": {k: list(v) for k, v in span.series.items()},
        "children": [_deterministic_tree(child) for child in span.children],
    }


def _traced_synthesis(name="nowick"):
    stg = benchmark_by_name(name).build()
    with tracing("run") as tracer:
        synthesize(stg, method="sg-explicit")
    return tracer


def test_counters_deterministic_across_identical_runs():
    first = _traced_synthesis()
    second = _traced_synthesis()
    assert _deterministic_tree(first.root) == _deterministic_tree(second.root)


def test_explicit_bfs_span_stats():
    stg = muller_pipeline(4)
    with tracing("bfs") as tracer:
        graph = build_state_graph(stg)
    reach = tracer.root.find("reachability")
    assert reach is not None
    assert reach.attrs["engine"] == "explicit"
    assert reach.counters["states"] == graph.num_states
    assert reach.counters["edges"] == graph.num_edges
    waves = reach.series["frontier_waves"]
    assert sum(waves) == graph.num_states
    assert len(waves) == reach.counters["bfs_depth"] + 1


def test_bdd_fixpoint_span_stats():
    stg = muller_pipeline(4)
    with tracing("bdd") as tracer:
        engine = SymbolicNet(stg.net, stg)
        engine.reachable_set()
    reach = tracer.root.find("reachability")
    assert reach is not None
    assert reach.attrs["engine"] == "bdd"
    passes = reach.counters["fixpoint_passes"]
    assert passes > 0
    assert len(reach.series["pass_nodes"]) == passes
    assert reach.counters["bdd_nodes"] > 0


def test_unfold_and_synthesize_spans():
    stg = benchmark_by_name("nowick").build()
    with tracing("synth") as tracer:
        synthesize(stg, method="unfolding-approx")
    synth = tracer.root.find("synthesize")
    assert synth is not None
    unfold_span = synth.find("unfold")
    assert unfold_span is not None
    assert unfold_span.counters["events"] > 0
    assert unfold_span.counters["extensions_tried"] >= unfold_span.counters[
        "extensions_added"
    ]
    summary = span_summary(synth)
    assert summary["counters"]["espresso_calls"] > 0
    assert "unfold" in summary["phases"]


def test_csc_resolve_span_stats():
    stg = csc_arbiter(2)
    with tracing("resolve-run") as tracer:
        result = resolve_csc(stg)
    span = tracer.root.find("csc")
    assert span is not None
    assert span.attrs["stage"] == "resolve"
    assert span.counters["rounds"] >= 1
    assert span.counters["candidates_validated"] >= 1
    assert span.counters["signals_inserted"] == result.num_inserted
    assert span.counters["resolved"] is result.resolved


def test_instrumented_sites_run_under_null_tracer():
    # Every instrumented layer, untraced: must work and leave no state on
    # the shared no-op span.
    assert current_tracer() is NULL_TRACER
    stg = benchmark_by_name("nowick").build()
    parse_g(write_g(stg), name="roundtrip")
    build_state_graph(stg)
    SymbolicNet(stg.net, stg).reachable_set()
    unfold(stg)
    synthesize(stg, method="sg-explicit")
    resolve_csc(csc_arbiter(2))
    simulate_spec(stg, architectures=("acg",))
    assert NULL_SPAN.counters == {}
    assert NULL_SPAN.series == {}
    assert NULL_SPAN.children == []


# ---------------------------------------------------------------------- #
# span_summary
# ---------------------------------------------------------------------- #
def test_span_summary_sums_counters_and_phases():
    tracer = Tracer("t")
    with tracer.span("root_phase") as root_phase:
        root_phase.counter("n", 1)
        with tracer.span("child"):
            tracer.counter("n", 2)
            tracer.gauge("flag", True)
        with tracer.span("child"):
            tracer.counter("n", 3)
            tracer.gauge("label", "bdd")
    summary = span_summary(root_phase)
    assert summary["counters"]["n"] == 6
    assert summary["counters"]["flag"] is True  # bools are not summed
    assert summary["counters"]["label"] == "bdd"
    assert set(summary["phases"]) == {"child"}
    assert summary["elapsed"] == round(root_phase.elapsed, 6)


# ---------------------------------------------------------------------- #
# Trace schema
# ---------------------------------------------------------------------- #
def test_table1_trace_validates_against_schema(tmp_path):
    entries = [benchmark_by_name(name) for name in ("nowick", "rcv-setup")]
    with tracing("table1") as tracer:
        rows = run_table1(
            entries=entries,
            methods=("unfolding-approx", "sg-explicit"),
            collect_metrics=True,
        )
    doc = tracer.to_dict()
    validate_trace(doc)  # must not raise
    # Rows carry metrics blobs with the same counters the trace recorded.
    for row in rows:
        assert row["sg-explicit_metrics"]["counters"]["states"] > 0

    path = tmp_path / "trace.json"
    path.write_text(json.dumps(doc))
    assert schema_main([str(path)]) == 0


def test_schema_rejects_malformed_documents(tmp_path):
    with tracing("small") as tracer:
        with tracer.span("x"):
            pass
    doc = tracer.to_dict()
    validate_trace(doc)

    bad_version = dict(doc)
    bad_version["version"] = 2
    with pytest.raises(TraceSchemaError):
        validate_trace(bad_version)

    bad_span = json.loads(json.dumps(doc))
    del bad_span["root"]["children"][0]["elapsed"]
    with pytest.raises(TraceSchemaError) as excinfo:
        validate_trace(bad_span)
    assert "elapsed" in str(excinfo.value)

    bad_series = json.loads(json.dumps(doc))
    bad_series["root"]["series"] = {"s": ["not-a-number"]}
    with pytest.raises(TraceSchemaError):
        validate_trace(bad_series)

    path = tmp_path / "bad.json"
    path.write_text(json.dumps(bad_version))
    assert schema_main([str(path)]) == 1


# ---------------------------------------------------------------------- #
# BENCH history + dashboard
# ---------------------------------------------------------------------- #
def _report(n):
    return {
        "generated_by": "test",
        "muller8_sg_explicit": {"packed_engine": {"seconds": 0.1 * n}},
        "table1_rows": [
            {
                "benchmark": "nowick",
                "signals": 6,
                "sg-explicit_outcome": "ok",
                "sg-explicit_total": 0.01 * n,
                "sg-explicit_literals": 10,
            }
        ],
    }


def test_stamp_report_adds_timestamp_and_rev():
    stamped = stamp_report(_report(1))
    assert "T" in stamped["timestamp"]  # ISO 8601
    rev = stamped["git_rev"]
    assert rev is None or (isinstance(rev, str) and len(rev) >= 7)


def test_merge_history_adopts_flat_file_and_trims():
    flat = _report(1)  # pre-history snapshot, no "history" key
    merged = merge_history(stamp_report(_report(2)), flat)
    assert len(merged["history"]) == 2
    assert merged["history"][0]["generated_by"] == "test"
    assert "history" not in merged["history"][0]
    # Latest fields stay at the top level (old flat-format consumers).
    assert merged["muller8_sg_explicit"]["packed_engine"]["seconds"] == 0.2

    for n in range(3, 10):
        merged = merge_history(stamp_report(_report(n)), merged, max_entries=4)
    assert len(merged["history"]) == 4
    assert merged["history"][-1]["muller8_sg_explicit"]["packed_engine"][
        "seconds"
    ] == pytest.approx(0.9)


def test_load_history_both_formats(tmp_path):
    flat_path = tmp_path / "flat.json"
    flat_path.write_text(json.dumps(_report(1)))
    assert len(load_history(str(flat_path))) == 1

    merged = merge_history(stamp_report(_report(2)), _report(1))
    hist_path = tmp_path / "hist.json"
    hist_path.write_text(json.dumps(merged))
    entries = load_history(str(hist_path))
    assert len(entries) == 2
    assert all("history" not in entry for entry in entries)


def test_render_dashboard_contains_method_tables():
    history = [stamp_report(_report(n)) for n in (1, 2)]
    text = render_dashboard(history)
    assert text.startswith("# BENCH dashboard")
    assert "## Run history" in text
    assert "## Per-method suite totals" in text
    assert "sg-explicit (s)" in text
    assert "1/1" in text  # ok/rows for the single table1 row
    assert "nowick" in text


def test_render_dashboard_empty_history():
    assert "(no history)" in render_dashboard([])
