"""Tests for the STG-unfolding segment, cuts, slices and semi-modularity."""

import pytest

from repro.stategraph import build_state_graph
from repro.stg import (
    STG,
    SignalType,
    choice_controller,
    figure4_example,
    muller_pipeline,
    paper_example,
    parallel_handshake,
)
from repro.unfolding import (
    UnfoldingError,
    check_semimodularity,
    enumerate_cuts,
    initial_cut,
    off_slices,
    on_slices,
    reachable_states,
    unfold,
)


EXAMPLES = [paper_example, figure4_example, choice_controller, lambda: muller_pipeline(3)]


def test_bottom_event_represents_initial_state():
    segment = unfold(paper_example())
    bottom = segment.bottom
    assert bottom.is_bottom
    assert bottom.code == (0, 0, 0)
    assert bottom.marking == frozenset({"p1"})
    assert initial_cut(segment).marking == frozenset({"p1"})


@pytest.mark.parametrize("builder", EXAMPLES)
def test_recovered_states_equal_state_graph(builder):
    stg = builder()
    segment = unfold(stg)
    graph = build_state_graph(stg)
    recovered = reachable_states(segment)
    from_graph = {m.places: tuple(c) for m, c in zip(graph.markings, graph.codes)}
    assert recovered == from_graph


def test_segment_is_smaller_than_state_graph_for_concurrent_spec():
    stg = muller_pipeline(8)
    segment = unfold(stg)
    graph = build_state_graph(stg)
    assert segment.num_events < graph.num_states


def test_cutoffs_exist_and_are_not_extended():
    segment = unfold(paper_example())
    assert segment.cutoffs
    for cutoff in segment.cutoffs:
        for condition in cutoff.postset:
            assert not condition.consumers


def test_causality_conflict_concurrency_are_mutually_exclusive():
    segment = unfold(paper_example())
    events = segment.non_bottom_events()
    for left in events:
        for right in events:
            if left is right:
                continue
            relations = [
                segment.strictly_precedes(left, right) or segment.strictly_precedes(right, left),
                segment.in_conflict(left, right),
                segment.concurrent_events(left, right),
            ]
            assert sum(1 for r in relations if r) == 1


def test_local_configuration_and_codes():
    segment = unfold(paper_example())
    for event in segment.non_bottom_events():
        config = segment.local_configuration(event)
        assert event.eid in config
        assert 0 in config  # bottom is an ancestor of everything
        assert segment.config_code(config) == event.code


def test_minimal_excitation_cut_enables_the_event():
    segment = unfold(paper_example())
    for event in segment.non_bottom_events():
        cut = segment.minimal_excitation_cut(event)
        cut_ids = {condition.cid for condition in cut}
        assert all(condition.cid in cut_ids for condition in event.preset)


def test_first_and_next_instances():
    segment = unfold(paper_example())
    first_b = segment.first_instances("b")
    assert {e.label.label(with_index=False) for e in first_b} == {"b+"}
    for event in first_b:
        followers = segment.next_instances(event)
        assert all(f.label.signal == "b" for f in followers)
        assert all(segment.strictly_precedes(event, f) for f in followers)


def test_unfolding_rejects_unsafe_nets():
    stg = STG("unsafe")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    plus = stg.add_transition("a+")
    p = stg.add_place("p", tokens=2)
    stg.add_arc(p, plus)
    with pytest.raises(UnfoldingError):
        unfold(stg)


def test_unfolding_detects_inconsistency():
    stg = STG("bad")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    t1 = stg.add_transition("a+")
    t2 = stg.add_transition("a+")
    start = stg.add_place("s", tokens=1)
    stg.add_arc(start, t1)
    stg.connect(t1, t2)
    with pytest.raises(UnfoldingError):
        unfold(stg)


def test_event_limit():
    with pytest.raises(UnfoldingError):
        unfold(muller_pipeline(6), max_events=5)


def test_enumerate_cuts_covers_all_markings():
    stg = parallel_handshake("hs", [2, 2])
    segment = unfold(stg)
    graph = build_state_graph(stg)
    markings = {cut.marking for cut in enumerate_cuts(segment)}
    assert markings == {m.places for m in graph.markings}


def test_on_off_slices_partition_reachable_codes():
    stg = paper_example()
    segment = unfold(stg)
    graph = build_state_graph(stg)
    on_codes = set()
    for slice_ in on_slices(segment, "b"):
        on_codes |= {code for _m, code in slice_.states()}
    off_codes = set()
    for slice_ in off_slices(segment, "b"):
        off_codes |= {code for _m, code in slice_.states()}
    expected_on = {tuple(graph.codes[s]) for s in range(graph.num_states)
                   if graph.implied_value(s, "b") == 1}
    expected_off = {tuple(graph.codes[s]) for s in range(graph.num_states)
                    if graph.implied_value(s, "b") == 0}
    assert on_codes == expected_on
    assert off_codes == expected_off


def test_paper_slice_structure_for_signal_b():
    segment = unfold(paper_example())
    slices = on_slices(segment, "b")
    # Two on-set slices, one per b+ instance (Figure 3).
    assert len(slices) == 2
    per_slice = [sorted("".join(map(str, code)) for _m, code in s.states()) for s in slices]
    union = set(per_slice[0]) | set(per_slice[1])
    assert union == {"100", "110", "101", "111", "011", "001"}
    # One of the slices is the choice branch {001, 011}.
    assert ["001", "011"] in per_slice


def test_semimodularity_on_good_examples():
    for builder in EXAMPLES:
        segment = unfold(builder())
        assert check_semimodularity(segment) == []


def test_semimodularity_violation_detected():
    stg = STG("nonpersistent")
    stg.add_signal("i", SignalType.INPUT, initial=0)
    stg.add_signal("x", SignalType.OUTPUT, initial=0)
    p = stg.add_place("p", tokens=1)
    i_plus = stg.add_transition("i+")
    x_plus = stg.add_transition("x+")
    stg.add_arc(p, i_plus)
    stg.add_arc(p, x_plus)
    stg.add_arc(i_plus, stg.add_place("pi"))
    stg.add_arc(x_plus, stg.add_place("px"))
    segment = unfold(stg)
    violations = check_semimodularity(segment)
    assert violations
    assert violations[0].disabled.transition == "x+"
