"""The numpy bitset kernel must be a bit-identical drop-in.

``kernel="numpy"`` replaces the per-state Python loops of the explicit
engine -- BFS frontier expansion, excitation-mask sweeps, the pairwise
USC/CSC code joins -- with whole-frontier ``uint64`` array operations.
These tests pin the contract down hard: across the Table 1 suite and the
Muller-pipeline family the kernel build must produce the *same graph* as
the reference (state numbering, packed codes, edges, excitation masks),
the same USC/CSC conflict lists and the same signature groups, and the
``resolve_kernel`` probe must fail loudly (never silently downgrade) when
numpy is demanded but missing.
"""

import pytest

import repro.kernel as kernel_mod
from repro.kernel import HAS_NUMPY, resolve_kernel
from repro.petrinet import StateSpaceLimitExceeded
from repro.spaces import ExplicitStateSpace
from repro.stategraph import build_state_graph, check_csc, check_usc
from repro.stategraph.stategraph import InconsistentSTGError
from repro.stg import STG, muller_pipeline, table1_suite
from repro.stg.signals import SignalType

requires_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def _specs():
    """(id, builder) pairs: the Table 1 suite plus muller 2..8."""
    pairs = [(entry.name, entry.build) for entry in table1_suite()]
    for stages in range(2, 9):
        pairs.append(
            ("muller_%d" % stages, lambda stages=stages: muller_pipeline(stages))
        )
    return pairs


SPECS = _specs()
SPEC_IDS = [spec_id for spec_id, _ in SPECS]
SPEC_BUILDERS = [builder for _, builder in SPECS]


# --------------------------------------------------------------------- #
# Probe / resolution
# --------------------------------------------------------------------- #
def test_resolve_kernel_auto_and_none_follow_the_probe():
    expected = "numpy" if HAS_NUMPY else "python"
    assert resolve_kernel(None) == expected
    assert resolve_kernel("auto") == expected


def test_resolve_kernel_python_is_always_available():
    assert resolve_kernel("python") == "python"


def test_resolve_kernel_unknown_rejected():
    with pytest.raises(ValueError):
        resolve_kernel("cuda")


def test_resolve_kernel_numpy_demand_fails_loudly_without_numpy(monkeypatch):
    monkeypatch.setattr(kernel_mod, "HAS_NUMPY", False)
    with pytest.raises(RuntimeError):
        resolve_kernel("numpy")
    # auto silently falls back instead
    assert resolve_kernel("auto") == "python"


@requires_numpy
def test_resolve_kernel_numpy_demand_honoured_with_numpy():
    assert resolve_kernel("numpy") == "numpy"


# --------------------------------------------------------------------- #
# Graph equivalence: kernel BFS vs reference BFS
# --------------------------------------------------------------------- #
@requires_numpy
@pytest.mark.parametrize("builder", SPEC_BUILDERS, ids=SPEC_IDS)
def test_kernel_graph_identical_to_reference(builder):
    reference = build_state_graph(builder(), kernel="python")
    vectorised = build_state_graph(builder(), kernel="numpy")
    assert vectorised.num_states == reference.num_states
    assert list(vectorised.packed_codes) == list(reference.packed_codes)
    assert list(vectorised.markings) == list(reference.markings)
    assert vectorised.num_edges == reference.num_edges
    assert list(vectorised.edges) == list(reference.edges)
    assert vectorised._excited_plus == reference._excited_plus
    assert vectorised._excited_minus == reference._excited_minus
    for state in range(reference.num_states):
        assert vectorised.successors(state) == reference.successors(state)
    assert vectorised.deadlock_states() == reference.deadlock_states()


@requires_numpy
def test_kernel_honours_max_states():
    with pytest.raises(StateSpaceLimitExceeded):
        build_state_graph(muller_pipeline(4), max_states=5, kernel="numpy")


@requires_numpy
def test_kernel_detects_inconsistent_stg():
    stg = STG("bad")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    t1 = stg.add_transition("a+")
    t2 = stg.add_transition("a+")
    start = stg.add_place("s", tokens=1)
    stg.add_arc(start, t1)
    stg.connect(t1, t2)
    with pytest.raises(InconsistentSTGError):
        build_state_graph(stg, kernel="numpy")


# --------------------------------------------------------------------- #
# Coding-sweep equivalence: USC / CSC / signature groups
# --------------------------------------------------------------------- #
@requires_numpy
@pytest.mark.parametrize("builder", SPEC_BUILDERS, ids=SPEC_IDS)
def test_kernel_usc_csc_identical_to_reference(builder):
    graph = build_state_graph(builder(), kernel="numpy")
    usc_py = check_usc(graph, kernel="python")
    usc_np = check_usc(graph, kernel="numpy")
    assert usc_np.satisfied == usc_py.satisfied
    assert usc_np.conflicts == usc_py.conflicts
    csc_py = check_csc(graph, kernel="python")
    csc_np = check_csc(graph, kernel="numpy")
    assert csc_np.satisfied == csc_py.satisfied
    assert csc_np.conflicts == csc_py.conflicts


@requires_numpy
@pytest.mark.parametrize("builder", SPEC_BUILDERS, ids=SPEC_IDS)
def test_kernel_signature_groups_identical_to_reference(builder):
    stg = builder()
    vectorised = ExplicitStateSpace(stg, kernel="numpy")
    reference = ExplicitStateSpace(stg, kernel="python")
    assert vectorised.signature_groups() == reference.signature_groups()


# --------------------------------------------------------------------- #
# Capability fallback
# --------------------------------------------------------------------- #
@requires_numpy
def test_kernel_falls_back_on_unpackable_request():
    # packed=False forces the legacy dict-of-tuples representation, which
    # the kernel cannot drive; the build must silently use the reference.
    graph = build_state_graph(muller_pipeline(4), packed=False, kernel="numpy")
    reference = build_state_graph(muller_pipeline(4), packed=False, kernel="python")
    assert graph.num_states == reference.num_states


@requires_numpy
def test_kernel_arrays_cached_and_consistent():
    from repro.kernel.bitset import graph_arrays

    from repro.kernel.bitset import _int_keys

    graph = build_state_graph(muller_pipeline(4), kernel="numpy")
    first = graph_arrays(graph)
    assert first is not None
    codes, plus, minus = first
    assert codes.shape == (graph.num_states, 1)  # one uint64 word per code row
    assert _int_keys(codes) == list(graph.packed_codes)
    assert _int_keys(plus) == list(graph._excited_plus)
    assert _int_keys(minus) == list(graph._excited_minus)
    again = graph_arrays(graph)
    assert again[0] is first[0]  # cached, not rebuilt
