"""Unit tests for the Petri-net kernel."""

import pytest

from repro.petrinet import (
    Marking,
    PetriNet,
    PetriNetError,
    StateSpaceLimitExceeded,
    check_boundedness,
    check_safeness,
    concurrency_relation,
    explore,
    structural_conflict_pairs,
    validate_net,
)


def simple_cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_place("p1", tokens=1)
    net.add_place("p2")
    net.add_transition("t1")
    net.add_transition("t2")
    net.add_arc("p1", "t1")
    net.add_arc("t1", "p2")
    net.add_arc("p2", "t2")
    net.add_arc("t2", "p1")
    return net


def fork_join() -> PetriNet:
    net = PetriNet("forkjoin")
    for place in ["p0", "a1", "a2", "b1", "b2", "pend"]:
        net.add_place(place)
    net.set_initial_tokens("p0", 1)
    net.add_transition("fork")
    net.add_transition("ta")
    net.add_transition("tb")
    net.add_transition("join")
    net.add_arc("p0", "fork")
    net.add_arc("fork", "a1")
    net.add_arc("fork", "b1")
    net.add_arc("a1", "ta")
    net.add_arc("ta", "a2")
    net.add_arc("b1", "tb")
    net.add_arc("tb", "b2")
    net.add_arc("a2", "join")
    net.add_arc("b2", "join")
    net.add_arc("join", "pend")
    return net


def test_marking_is_immutable_and_hashable():
    marking = Marking({"p1": 1, "p2": 2})
    assert marking["p1"] == 1
    assert marking["missing"] == 0
    assert marking.total_tokens == 3
    assert not marking.is_safe()
    assert hash(marking) == hash(Marking({"p2": 2, "p1": 1}))
    with pytest.raises(AttributeError):
        marking.x = 1


def test_marking_covers():
    assert Marking({"p": 2}).covers(Marking({"p": 1}))
    assert not Marking({"p": 1}).covers(Marking({"q": 1}))


def test_firing_rule():
    net = simple_cycle()
    m0 = net.initial_marking
    assert net.is_enabled(m0, "t1")
    assert not net.is_enabled(m0, "t2")
    m1 = net.fire(m0, "t1")
    assert m1 == Marking({"p2": 1})
    with pytest.raises(PetriNetError):
        net.fire(m1, "t1")
    assert net.fire_sequence(m0, ["t1", "t2"]) == m0


def test_reachability_of_cycle():
    graph = explore(simple_cycle())
    assert graph.num_states == 2
    assert graph.num_edges == 2
    assert graph.is_safe()
    assert not graph.deadlocks()


def test_reachability_of_fork_join():
    graph = explore(fork_join())
    # p0, {a1,b1}, {a2,b1}, {a1,b2}, {a2,b2}, pend
    assert graph.num_states == 6
    assert graph.deadlocks() == [graph.index_of(Marking({"pend": 1}))]


def test_state_budget():
    with pytest.raises(StateSpaceLimitExceeded):
        explore(fork_join(), max_states=2)


def test_structural_conflicts_and_free_choice():
    net = PetriNet("choice")
    net.add_place("p", tokens=1)
    net.add_transition("t1")
    net.add_transition("t2")
    net.add_arc("p", "t1")
    net.add_arc("p", "t2")
    assert net.structural_conflicts("t1") == {"t2"}
    assert structural_conflict_pairs(net) == {frozenset({"t1", "t2"})}
    assert net.is_free_choice()


def test_concurrency_relation():
    pairs = concurrency_relation(fork_join())
    assert frozenset({"ta", "tb"}) in pairs
    assert frozenset({"fork", "join"}) not in pairs


def test_boundedness_and_safeness():
    assert check_safeness(simple_cycle())
    unbounded = PetriNet("unbounded")
    unbounded.add_place("p", tokens=1)
    unbounded.add_transition("t")
    unbounded.add_arc("p", "t")
    unbounded.add_arc("t", "p")
    unbounded.add_place("q")
    unbounded.add_arc("t", "q")
    assert not check_boundedness(unbounded, bound=1)


def test_validate_net_report():
    report = validate_net(fork_join())
    assert report.bounded
    assert report.safe
    assert report.has_deadlock
    assert report.num_states == 6


def test_duplicate_names_rejected():
    net = PetriNet()
    net.add_place("x")
    with pytest.raises(PetriNetError):
        net.add_transition("x")


def test_copy_is_independent():
    net = simple_cycle()
    clone = net.copy()
    clone.add_place("extra", tokens=1)
    assert not net.has_place("extra")
    assert clone.initial_marking["extra"] == 1
