"""Tests for the experiment harnesses and the command-line interface."""

import pytest

from repro.cli import main
from repro.flow import format_table, run_counterflow, run_figure6, run_table1
from repro.stg import benchmark_by_name, write_g_file


def small_entries():
    return [benchmark_by_name(name) for name in ("sendr-done", "rcv-setup", "nowick")]


def test_run_table1_on_small_subset():
    rows = run_table1(entries=small_entries(), methods=("unfolding-approx", "sg-explicit"))
    assert len(rows) == 3
    for row in rows:
        assert row["LitCnt"] > 0
        assert row["TotTim"] >= 0
        assert row["sg-explicit_literals"] == row["LitCnt"]
        assert row["signals"] == benchmark_by_name(row["benchmark"]).expected_signals
        # the simulator-backed conformance column (on by default)
        assert row["Conf"] == "ok"
        assert row["sim_states"] > 0
        assert row["Conf_method"] == "unfolding-approx"


def test_run_table1_conformance_prefers_unfolding_implementation():
    rows = run_table1(
        entries=small_entries()[:1],
        methods=("sg-explicit", "unfolding-approx"),
    )
    assert rows[0]["Conf_method"] == "unfolding-approx"
    assert rows[0]["Conf"] == "ok"


def test_run_table1_without_conformance():
    rows = run_table1(
        entries=small_entries()[:1],
        methods=("unfolding-approx",),
        conformance=False,
    )
    assert "Conf" not in rows[0]


def test_run_figure6_small_sweep():
    rows = run_figure6(stage_counts=(1, 2), methods=("unfolding-approx", "sg-explicit"))
    assert [row["stages"] for row in rows] == [1, 2]
    for row in rows:
        assert row["unfolding-approx"] is not None
        assert row["sg-explicit"] is not None


def test_run_figure6_respects_method_limits():
    rows = run_figure6(
        stage_counts=(3,),
        methods=("unfolding-approx", "sg-explicit"),
        method_limits={"sg-explicit": 2},
    )
    assert rows[0]["sg-explicit"] is None
    assert rows[0]["unfolding-approx"] is not None


def test_run_counterflow_small():
    row = run_counterflow(stages_per_direction=2)
    assert row["signals"] == 8
    assert row["literals"] > 0


def test_format_table():
    text = format_table([{"a": 1, "b": "xy"}], ["a", "b"])
    assert "a" in text and "xy" in text
    assert len(text.splitlines()) == 3


def test_cli_synth_benchmark(capsys):
    assert main(["synth", "sendr-done", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "total literals" in out
    assert "verification: OK" in out


def test_cli_synth_g_file(tmp_path, capsys):
    from repro.stg import paper_example

    path = tmp_path / "example.g"
    write_g_file(paper_example(), str(path))
    assert main(["synth", str(path), "--method", "unfolding-exact"]) == 0
    assert "b =" in capsys.readouterr().out


def test_cli_table1_subset(capsys):
    assert main(["table1", "--benchmarks", "sendr-done", "--methods", "unfolding-approx"]) == 0
    out = capsys.readouterr().out
    assert "sendr-done" in out
    assert "LitCnt" in out


def test_cli_figure6(capsys):
    assert main(["figure6", "--stages", "1", "--methods", "unfolding-approx"]) == 0
    assert "signals" in capsys.readouterr().out


def test_cli_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["synth", "no-such-benchmark"])


def test_run_table1_resolve_encoding_columns():
    entries = [benchmark_by_name(name) for name in ("sendr-done", "vme_read")]
    rows = run_table1(
        entries=entries,
        methods=("unfolding-approx",),
        resolve_encoding=True,
    )
    clean, vme = rows
    assert clean["csc_signals_added"] == 0
    assert clean["csc_resolved"] is True
    assert vme["csc_signals_added"] == 1
    assert vme["csc_resolved"] is True
    # The resolved implementation executes conformant against the rewritten
    # specification (the Conf column exercises the inserted gate).
    assert vme["Conf"] == "ok"
    assert vme["LitCnt"] > 0


def test_run_table1_without_resolution_reports_unresolved():
    rows = run_table1(
        entries=[benchmark_by_name("vme_read")],
        methods=("unfolding-approx",),
    )
    assert rows[0]["csc_signals_added"] == 0
    assert rows[0]["csc_resolved"] is False
    assert rows[0]["Conf"] is None  # no conflict-free implementation to run


def test_cli_csc_resolves_and_fails_on_unresolved(capsys):
    assert main(["csc", "vme_read", "csc_arbiter_4", "--fail-on-unresolved"]) == 0
    out = capsys.readouterr().out
    assert "csc0" in out
    assert "True" in out
    # Budget 0 cannot resolve anything: the gate must fail.
    assert (
        main(["csc", "vme_read", "--max-signals", "0", "--fail-on-unresolved"]) == 1
    )
    assert "unresolved" in capsys.readouterr().out


def test_cli_csc_no_resolve_reports_only(capsys):
    assert main(["csc", "vme_read", "--no-resolve"]) == 0
    out = capsys.readouterr().out
    assert "vme_read" in out
    assert "csc0" not in out


def test_cli_csc_writes_resolved_g_file(tmp_path, capsys):
    path = tmp_path / "resolved.g"
    assert main(["csc", "csc_conflict", "-o", str(path)]) == 0
    text = path.read_text()
    assert ".internal csc0" in text
    capsys.readouterr()
    # The written file is itself CSC-clean.
    assert main(["csc", str(path), "--no-resolve", "--fail-on-unresolved"]) == 0


def test_cli_table1_resolve_encoding(capsys):
    assert (
        main(
            [
                "table1",
                "--benchmarks",
                "vme_read",
                "--methods",
                "unfolding-approx",
                "--resolve-encoding",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "csc_signals_added" in out
    assert "csc_resolved" in out


# ---------------------------------------------------------------------- #
# State-space engine selection (--engine / engine=)
# ---------------------------------------------------------------------- #
def test_apply_engine_retargets_sg_methods():
    from repro.flow import apply_engine

    assert apply_engine(("unfolding-approx", "sg-explicit"), "bdd") == (
        "unfolding-approx",
        "sg-bdd",
    )
    # duplicates collapse when both SG methods retarget onto one engine
    assert apply_engine(("sg-explicit", "sg-bdd"), "explicit") == ("sg-explicit",)
    assert apply_engine(("sg-explicit",), None) == ("sg-explicit",)


def test_run_table1_engine_bdd_reports_engine_columns():
    rows = run_table1(
        entries=small_entries()[:1],
        methods=("unfolding-approx", "sg-explicit"),
        engine="bdd",
    )
    row = rows[0]
    assert row["engine"] == "bdd"
    assert row["sg-bdd_outcome"] == "ok"
    assert row["sg-bdd_engine"] == "bdd"
    assert "sg-explicit_total" not in row
    assert row["sg-bdd_literals"] == row["LitCnt"]


def test_run_table1_default_engine_is_explicit():
    rows = run_table1(entries=small_entries()[:1], methods=("sg-explicit",))
    assert rows[0]["engine"] == "explicit"
    assert rows[0]["sg-explicit_engine"] == "explicit"


def test_cli_table1_engine_bdd(capsys):
    assert (
        main(
            [
                "table1",
                "--benchmarks",
                "nowick",
                "--methods",
                "unfolding-approx",
                "sg-explicit",
                "--engine",
                "bdd",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "sg-bdd_total" in out
    assert "engine" in out


def test_cli_csc_symbolic_detection(capsys):
    assert main(["csc", "vme_read", "--engine", "bdd", "--no-resolve"]) == 0
    out = capsys.readouterr().out
    assert "bdd" in out
    assert "vme_read" in out


def test_cli_csc_symbolic_detection_with_resolution(capsys):
    # detection runs symbolically, the insertion pass falls back to the
    # explicit graph and still resolves the conflict
    assert main(["csc", "vme_read", "--engine", "bdd", "--fail-on-unresolved"]) == 0
    out = capsys.readouterr().out
    assert "csc0" in out


def test_batch_engine_threading():
    from repro.flow import run_table1_batch

    rows = run_table1_batch(
        names=["sendr-done"],
        methods=("sg-explicit",),
        jobs=1,
        conformance=False,
        engine="bdd",
    )
    assert rows[0]["engine"] == "bdd"
    assert rows[0]["sg-bdd_outcome"] == "ok"
    assert rows[0]["outcome"] == "ok"


def test_benchmark_by_name_parameterised_families():
    entry = benchmark_by_name("muller_pipeline_16")
    assert entry.expected_signals == 18
    stg = entry.build()
    assert stg.num_signals == 18
    entry = benchmark_by_name("csc_arbiter_6")
    assert entry.expected_signals == 7
    assert not entry.csc_clean
    with pytest.raises(KeyError):
        benchmark_by_name("muller_pipeline_zero")
    with pytest.raises(KeyError):
        benchmark_by_name("muller_pipeline_0")
