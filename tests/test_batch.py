"""Tests for the parallel experiment batch runner and the timeout outcome."""

import json
import time

import pytest

import repro.flow.batch as batch_module
from repro.cli import main
from repro.flow import (
    row_outcome,
    run_figure6_batch,
    run_table1,
    run_table1_batch,
)
from repro.flow.batch import _partial_writer, _read_partial, _run_batch
from repro.stg import benchmark_by_name

NAMES = ["sendr-done", "rcv-setup", "nowick"]
METHODS = ("unfolding-approx", "sg-explicit")


def _stable(row):
    """The deterministic fields of a row (times vary run to run)."""
    keys = (
        "benchmark",
        "signals",
        "LitCnt",
        "sg-explicit_literals",
        "unfolding-approx_outcome",
        "sg-explicit_outcome",
        "Conf",
        "Conf_method",
        "sim_states",
    )
    return {key: row.get(key) for key in keys}


def test_batch_matches_serial_rows():
    serial = run_table1(
        entries=[benchmark_by_name(name) for name in NAMES], methods=METHODS
    )
    parallel = run_table1_batch(names=NAMES, methods=METHODS, jobs=2)
    assert [row["benchmark"] for row in parallel] == NAMES
    assert [_stable(row) for row in parallel] == [_stable(row) for row in serial]
    assert all(row["outcome"] == "ok" for row in parallel)


def test_batch_single_job_matches_multi_job():
    one = run_table1_batch(names=NAMES[:2], methods=METHODS, jobs=1)
    two = run_table1_batch(names=NAMES[:2], methods=METHODS, jobs=2)
    assert [_stable(row) for row in one] == [_stable(row) for row in two]


def test_batch_resolve_encoding_columns():
    rows = run_table1_batch(
        names=["vme_read", "sendr-done"],
        methods=("unfolding-approx",),
        jobs=2,
        resolve_encoding=True,
    )
    vme, clean = rows
    assert vme["outcome"] == "ok"
    assert vme["csc_signals_added"] == 1
    assert vme["csc_resolved"] is True
    assert vme["Conf"] == "ok"
    assert clean["csc_signals_added"] == 0
    assert clean["csc_resolved"] is True


def test_figure6_batch_rows():
    rows = run_figure6_batch(stage_counts=(1, 2), methods=METHODS, jobs=2)
    assert [row["stages"] for row in rows] == [1, 2]
    for row in rows:
        assert row["outcome"] == "ok"
        assert row["unfolding-approx"] is not None


def test_timeout_outcome_is_distinct_from_error():
    rows = run_table1(
        entries=[benchmark_by_name("imec-master-read.csc")],
        methods=("sg-explicit",),
        timeout=0.001,
        conformance=False,
    )
    row = rows[0]
    assert row["sg-explicit_outcome"] == "timeout"
    assert row["sg-explicit_total"] is None
    assert row_outcome(row) == "timeout"


def test_row_outcome_aggregation():
    assert row_outcome({"a_outcome": "ok", "b_outcome": "ok"}) == "ok"
    assert row_outcome({"a_outcome": "ok", "b_outcome": "timeout"}) == "timeout"
    assert row_outcome({"a_outcome": "timeout", "b_outcome": "error"}) == "error"
    assert row_outcome({"a_outcome": "ok", "Conf": "error"}) == "error"
    assert row_outcome({"a_outcome": "skipped"}) == "ok"


def test_partial_writer_roundtrip(tmp_path):
    path = str(tmp_path / "0.json")
    writer = _partial_writer(path)
    writer({"benchmark": "x", "a_total": 0.5})
    writer({"benchmark": "x", "a_total": 0.5, "b_total": 0.7})
    assert _read_partial(path) == {"benchmark": "x", "a_total": 0.5, "b_total": 0.7}


def test_read_partial_tolerates_missing_and_garbage(tmp_path):
    assert _read_partial(None) == {}
    assert _read_partial(str(tmp_path / "absent.json")) == {}
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    assert _read_partial(str(garbage)) == {}
    non_dict = tmp_path / "list.json"
    non_dict.write_text("[1, 2]")
    assert _read_partial(str(non_dict)) == {}
    assert _partial_writer(None) is None


def _hang_after_partial(args):
    """Worker that persists a partial row, then hangs past every budget."""
    writer = _partial_writer(args.get("partial_path"))
    writer(
        {
            "benchmark": args["name"],
            "sg-explicit_total": 1.23,
            "sg-explicit_outcome": "ok",
        }
    )
    time.sleep(60)


def test_hung_worker_merges_partial_row(monkeypatch):
    monkeypatch.setattr(batch_module, "PARENT_SLACK_SECONDS", 0.5)
    rows = _run_batch(
        _hang_after_partial,
        [{"name": "slow"}],
        [{"benchmark": "slow"}],
        jobs=1,
        task_timeout=0.05,
        methods_per_row=1,
    )
    (row,) = rows
    # The row timed out as a whole, but the per-method results the worker
    # persisted before hanging survive the merge.
    assert row["outcome"] == "timeout"
    assert row["benchmark"] == "slow"
    assert row["sg-explicit_total"] == 1.23
    assert row["sg-explicit_outcome"] == "ok"


def test_batch_collect_metrics_rows_carry_blobs():
    rows = run_table1_batch(
        names=["nowick"], methods=METHODS, jobs=1, collect_metrics=True
    )
    (row,) = rows
    assert row["outcome"] == "ok"
    for method in METHODS:
        blob = row["%s_metrics" % method]
        assert blob["elapsed"] > 0.0
        assert isinstance(blob["counters"], dict)
    assert row["conformance_metrics"]["counters"]["sim_states"] > 0


def test_cli_batch_writes_json(tmp_path, capsys):
    path = tmp_path / "batch.json"
    assert (
        main(
            [
                "batch",
                "--benchmarks",
                "sendr-done",
                "--methods",
                "unfolding-approx",
                "--jobs",
                "1",
                "--json",
                str(path),
                "--fail-on-anomaly",
            ]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["kind"] == "table1"
    assert payload["outcomes"] == {"ok": 1, "timeout": 0, "error": 0}
    assert payload["rows"][0]["benchmark"] == "sendr-done"
    assert "sendr-done" in capsys.readouterr().out
