"""Tests for the parallel experiment batch runner and the timeout outcome."""

import json

import pytest

from repro.cli import main
from repro.flow import (
    row_outcome,
    run_figure6_batch,
    run_table1,
    run_table1_batch,
)
from repro.stg import benchmark_by_name

NAMES = ["sendr-done", "rcv-setup", "nowick"]
METHODS = ("unfolding-approx", "sg-explicit")


def _stable(row):
    """The deterministic fields of a row (times vary run to run)."""
    keys = (
        "benchmark",
        "signals",
        "LitCnt",
        "sg-explicit_literals",
        "unfolding-approx_outcome",
        "sg-explicit_outcome",
        "Conf",
        "Conf_method",
        "sim_states",
    )
    return {key: row.get(key) for key in keys}


def test_batch_matches_serial_rows():
    serial = run_table1(
        entries=[benchmark_by_name(name) for name in NAMES], methods=METHODS
    )
    parallel = run_table1_batch(names=NAMES, methods=METHODS, jobs=2)
    assert [row["benchmark"] for row in parallel] == NAMES
    assert [_stable(row) for row in parallel] == [_stable(row) for row in serial]
    assert all(row["outcome"] == "ok" for row in parallel)


def test_batch_single_job_matches_multi_job():
    one = run_table1_batch(names=NAMES[:2], methods=METHODS, jobs=1)
    two = run_table1_batch(names=NAMES[:2], methods=METHODS, jobs=2)
    assert [_stable(row) for row in one] == [_stable(row) for row in two]


def test_batch_resolve_encoding_columns():
    rows = run_table1_batch(
        names=["vme_read", "sendr-done"],
        methods=("unfolding-approx",),
        jobs=2,
        resolve_encoding=True,
    )
    vme, clean = rows
    assert vme["outcome"] == "ok"
    assert vme["csc_signals_added"] == 1
    assert vme["csc_resolved"] is True
    assert vme["Conf"] == "ok"
    assert clean["csc_signals_added"] == 0
    assert clean["csc_resolved"] is True


def test_figure6_batch_rows():
    rows = run_figure6_batch(stage_counts=(1, 2), methods=METHODS, jobs=2)
    assert [row["stages"] for row in rows] == [1, 2]
    for row in rows:
        assert row["outcome"] == "ok"
        assert row["unfolding-approx"] is not None


def test_timeout_outcome_is_distinct_from_error():
    rows = run_table1(
        entries=[benchmark_by_name("imec-master-read.csc")],
        methods=("sg-explicit",),
        timeout=0.001,
        conformance=False,
    )
    row = rows[0]
    assert row["sg-explicit_outcome"] == "timeout"
    assert row["sg-explicit_total"] is None
    assert row_outcome(row) == "timeout"


def test_row_outcome_aggregation():
    assert row_outcome({"a_outcome": "ok", "b_outcome": "ok"}) == "ok"
    assert row_outcome({"a_outcome": "ok", "b_outcome": "timeout"}) == "timeout"
    assert row_outcome({"a_outcome": "timeout", "b_outcome": "error"}) == "error"
    assert row_outcome({"a_outcome": "ok", "Conf": "error"}) == "error"
    assert row_outcome({"a_outcome": "skipped"}) == "ok"


def test_cli_batch_writes_json(tmp_path, capsys):
    path = tmp_path / "batch.json"
    assert (
        main(
            [
                "batch",
                "--benchmarks",
                "sendr-done",
                "--methods",
                "unfolding-approx",
                "--jobs",
                "1",
                "--json",
                str(path),
                "--fail-on-anomaly",
            ]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["kind"] == "table1"
    assert payload["outcomes"] == {"ok": 1, "timeout": 0, "error": 0}
    assert payload["rows"][0]["benchmark"] == "sendr-done"
    assert "sendr-done" in capsys.readouterr().out
