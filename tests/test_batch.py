"""Tests for the parallel experiment batch runner and the timeout outcome."""

import json
import time

import pytest

import repro.flow.batch as batch_module
from repro.cli import main
from repro.flow import (
    row_outcome,
    run_figure6_batch,
    run_table1,
    run_table1_batch,
)
from repro.flow.batch import _partial_writer, _read_partial, _run_batch
from repro.stg import benchmark_by_name

NAMES = ["sendr-done", "rcv-setup", "nowick"]
METHODS = ("unfolding-approx", "sg-explicit")


def _stable(row):
    """The deterministic fields of a row (times vary run to run)."""
    keys = (
        "benchmark",
        "signals",
        "LitCnt",
        "sg-explicit_literals",
        "unfolding-approx_outcome",
        "sg-explicit_outcome",
        "Conf",
        "Conf_method",
        "sim_states",
    )
    return {key: row.get(key) for key in keys}


def test_batch_matches_serial_rows():
    serial = run_table1(
        entries=[benchmark_by_name(name) for name in NAMES], methods=METHODS
    )
    parallel = run_table1_batch(names=NAMES, methods=METHODS, jobs=2)
    assert [row["benchmark"] for row in parallel] == NAMES
    assert [_stable(row) for row in parallel] == [_stable(row) for row in serial]
    assert all(row["outcome"] == "ok" for row in parallel)


def test_batch_single_job_matches_multi_job():
    one = run_table1_batch(names=NAMES[:2], methods=METHODS, jobs=1)
    two = run_table1_batch(names=NAMES[:2], methods=METHODS, jobs=2)
    assert [_stable(row) for row in one] == [_stable(row) for row in two]


def test_batch_resolve_encoding_columns():
    rows = run_table1_batch(
        names=["vme_read", "sendr-done"],
        methods=("unfolding-approx",),
        jobs=2,
        resolve_encoding=True,
    )
    vme, clean = rows
    assert vme["outcome"] == "ok"
    assert vme["csc_signals_added"] == 1
    assert vme["csc_resolved"] is True
    assert vme["Conf"] == "ok"
    assert clean["csc_signals_added"] == 0
    assert clean["csc_resolved"] is True


def test_figure6_batch_rows():
    rows = run_figure6_batch(stage_counts=(1, 2), methods=METHODS, jobs=2)
    assert [row["stages"] for row in rows] == [1, 2]
    for row in rows:
        assert row["outcome"] == "ok"
        assert row["unfolding-approx"] is not None


def test_timeout_outcome_is_distinct_from_error():
    rows = run_table1(
        entries=[benchmark_by_name("imec-master-read.csc")],
        methods=("sg-explicit",),
        timeout=0.001,
        conformance=False,
    )
    row = rows[0]
    assert row["sg-explicit_outcome"] == "timeout"
    assert row["sg-explicit_total"] is None
    assert row_outcome(row) == "timeout"


def test_row_outcome_aggregation():
    assert row_outcome({"a_outcome": "ok", "b_outcome": "ok"}) == "ok"
    assert row_outcome({"a_outcome": "ok", "b_outcome": "timeout"}) == "timeout"
    assert row_outcome({"a_outcome": "timeout", "b_outcome": "error"}) == "error"
    assert row_outcome({"a_outcome": "ok", "Conf": "error"}) == "error"
    assert row_outcome({"a_outcome": "skipped"}) == "ok"


def test_partial_writer_roundtrip(tmp_path):
    path = str(tmp_path / "0.json")
    writer = _partial_writer(path)
    writer({"benchmark": "x", "a_total": 0.5})
    writer({"benchmark": "x", "a_total": 0.5, "b_total": 0.7})
    assert _read_partial(path) == {"benchmark": "x", "a_total": 0.5, "b_total": 0.7}


def test_read_partial_tolerates_missing_and_garbage(tmp_path):
    assert _read_partial(None) == {}
    assert _read_partial(str(tmp_path / "absent.json")) == {}
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    assert _read_partial(str(garbage)) == {}
    non_dict = tmp_path / "list.json"
    non_dict.write_text("[1, 2]")
    assert _read_partial(str(non_dict)) == {}
    assert _partial_writer(None) is None


def _hang_after_partial(args):
    """Worker that persists a partial row, then hangs past every budget."""
    writer = _partial_writer(args.get("partial_path"))
    writer(
        {
            "benchmark": args["name"],
            "sg-explicit_total": 1.23,
            "sg-explicit_outcome": "ok",
        }
    )
    time.sleep(60)


def test_hung_worker_merges_partial_row(monkeypatch):
    monkeypatch.setattr(batch_module, "PARENT_SLACK_SECONDS", 0.5)
    rows = _run_batch(
        _hang_after_partial,
        [{"name": "slow"}],
        [{"benchmark": "slow"}],
        jobs=1,
        task_timeout=0.05,
        methods_per_row=1,
    )
    (row,) = rows
    # The row timed out as a whole, but the per-method results the worker
    # persisted before hanging survive the merge.
    assert row["outcome"] == "timeout"
    assert row["benchmark"] == "slow"
    assert row["sg-explicit_total"] == 1.23
    assert row["sg-explicit_outcome"] == "ok"


def _hang_with_observability(args):
    """Worker with the full watchdog rig: beat file + SIGUSR1 stack dump,
    one partial-row write, then a hang past every budget."""
    with batch_module._WorkerObservability(args):
        writer = _partial_writer(args.get("partial_path"))
        writer(
            {
                "benchmark": args["name"],
                "sg-explicit_total": 1.23,
                "sg-explicit_outcome": "ok",
            }
        )
        time.sleep(60)


def test_watchdog_diagnoses_hung_worker_with_stack(monkeypatch):
    import repro.obs as obs

    monkeypatch.setattr(batch_module, "PARENT_SLACK_SECONDS", 2.0)
    events = []
    stream = obs.EventStream([obs.CallbackSink(events.append)], min_interval=0.0)
    tracer = obs.Tracer("batch")
    obs.attach_stream(tracer, stream)
    with obs.tracing(tracer=tracer):
        rows = _run_batch(
            _hang_with_observability,
            [{"name": "wedged"}],
            [{"benchmark": "wedged"}],
            jobs=1,
            task_timeout=0.05,
            methods_per_row=1,
            stall_after=0.6,
        )
    (row,) = rows
    # The partial results still merge, and the timeout now carries an
    # attributable diagnosis with the worker's captured stack.
    assert row["outcome"] == "timeout"
    assert row["sg-explicit_total"] == 1.23
    assert row["diagnosis"] == "stalled"
    blob = row["stall_metrics"]
    assert blob["diagnosis"] == "stalled"
    assert blob["silent_for"] > 0.5
    assert isinstance(blob["pid"], int)
    # faulthandler dumped the worker's live stack: the hung frame is in it.
    assert "_hang_with_observability" in blob.get("stack", "")

    kinds = [event["kind"] for event in events]
    assert "heartbeat" in kinds
    assert "stall" in kinds
    assert "row" in kinds
    beat = next(event for event in events if event["kind"] == "heartbeat")
    assert beat["row"] == "wedged"
    assert isinstance(beat["pid"], int)
    stall = next(event for event in events if event["kind"] == "stall")
    assert stall["row"] == "wedged"
    assert stall["silent_for"] > 0.5
    final = next(event for event in events if event["kind"] == "row")
    assert final["outcome"] == "timeout"
    assert final["diagnosis"] == "stalled"


def test_watchdog_fresh_evidence_clears_stall(tmp_path):
    from repro.flow.batch import _StallWatchdog

    partial = tmp_path / "0.json"
    beat = tmp_path / "0.beat"
    task_args = [
        {"partial_path": str(partial), "beat_path": str(beat),
         "stack_path": None}
    ]
    # Worker alive (beat file present, pid deliberately non-int so no
    # signal is ever sent to a real process) but silent: stall records.
    beat.write_text(json.dumps({"pid": None, "time": time.time(), "beats": 1}))
    watchdog = _StallWatchdog(task_args, ["row0"], stall_after=0.2)
    watchdog.poll([0])
    assert watchdog.stalls == {}
    time.sleep(0.3)
    watchdog.poll([0])
    assert 0 in watchdog.stalls
    assert watchdog.stalls[0]["diagnosis"] == "stalled"
    # Fresh progress evidence (a partial-row write) clears the diagnosis:
    # a straggler that recovers is not stalled.
    partial.write_text(json.dumps({"benchmark": "row0"}))
    watchdog.poll([0])
    assert watchdog.stalls == {}
    row = {"outcome": "timeout"}
    watchdog.annotate_timeout(0, row)
    assert "diagnosis" not in row


def test_worker_observability_writes_beats(tmp_path):
    beat_path = str(tmp_path / "w.beat")
    with batch_module._WorkerObservability(
        {"beat_path": beat_path, "stack_path": str(tmp_path / "w.stack")}
    ):
        time.sleep(0.05)
        payload = json.loads(open(beat_path).read())
    assert payload["pid"] == __import__("os").getpid()
    assert payload["time"] > 0


def test_batch_collect_metrics_rows_carry_blobs():
    rows = run_table1_batch(
        names=["nowick"], methods=METHODS, jobs=1, collect_metrics=True
    )
    (row,) = rows
    assert row["outcome"] == "ok"
    for method in METHODS:
        blob = row["%s_metrics" % method]
        assert blob["elapsed"] > 0.0
        assert isinstance(blob["counters"], dict)
    assert row["conformance_metrics"]["counters"]["sim_states"] > 0


def test_cli_batch_writes_json(tmp_path, capsys):
    path = tmp_path / "batch.json"
    assert (
        main(
            [
                "batch",
                "--benchmarks",
                "sendr-done",
                "--methods",
                "unfolding-approx",
                "--jobs",
                "1",
                "--json",
                str(path),
                "--fail-on-anomaly",
            ]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["kind"] == "table1"
    assert payload["outcomes"] == {"ok": 1, "timeout": 0, "error": 0}
    assert payload["rows"][0]["benchmark"] == "sendr-done"
    assert "sendr-done" in capsys.readouterr().out
