"""Tests for the packed bitvector state core (repro.core)."""

import pytest

from repro.core import (
    LazyDecodedList,
    MarkingCodec,
    NameTable,
    PackedNet,
    PlaceTable,
    SignalTable,
    UnsafeNetError,
    bits_of_mask,
    pack_code,
    unpack_code,
)
from repro.petrinet import Marking, PetriNet, explore
from repro.stg import benchmark_by_name


# ---------------------------------------------------------------------- #
# Name tables
# ---------------------------------------------------------------------- #
def test_name_table_interning_is_stable_and_idempotent():
    table = NameTable(["a", "b"])
    assert table.index("a") == 0
    assert table.index("b") == 1
    assert table.intern("a") == 0  # idempotent
    assert table.intern("c") == 2
    assert table.names == ("a", "b", "c")
    assert len(table) == 3
    assert "b" in table and "z" not in table
    assert table.get("z") is None


def test_name_table_bits_and_masks():
    table = SignalTable(["x", "y", "z"])
    assert table.bit("x") == 1
    assert table.bit("z") == 4
    assert table.full_mask == 0b111
    assert table.mask_of(["x", "z"]) == 0b101
    assert table.names_in(0b101) == ["x", "z"]
    assert table.names_in(0) == []


def test_pack_unpack_code_roundtrip():
    code = (1, 0, 1, 1, 0)
    word = pack_code(code)
    assert word == 0b01101  # leftmost element is the lowest bit
    assert unpack_code(word, 5) == code
    assert bits_of_mask(word) == [0, 2, 3]


# ---------------------------------------------------------------------- #
# Marking codec
# ---------------------------------------------------------------------- #
def test_marking_codec_roundtrip():
    table = PlaceTable(["p0", "p1", "p2"])
    codec = MarkingCodec(table)
    marking = Marking({"p0": 1, "p2": 1})
    word = codec.encode(marking)
    assert word == 0b101
    assert codec.decode(word) == marking
    assert codec.decode_places(word) == ["p0", "p2"]


def test_marking_codec_rejects_non_safe_markings():
    codec = MarkingCodec(PlaceTable(["p"]))
    with pytest.raises(UnsafeNetError):
        codec.encode(Marking({"p": 2}))


# ---------------------------------------------------------------------- #
# Packed token game
# ---------------------------------------------------------------------- #
def _toggle_net():
    net = PetriNet("toggle")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_transition("u")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    net.add_arc("q", "u")
    net.add_arc("u", "p")
    return net


def test_packed_net_token_game_matches_dict_token_game():
    net = _toggle_net()
    pnet = PackedNet(net)
    marking = pnet.initial
    dict_marking = net.initial_marking
    for _ in range(4):
        enabled = pnet.enabled_indices(marking)
        names = [pnet.transitions[i] for i in enabled]
        assert names == net.enabled_transitions(dict_marking)
        marking = pnet.fire(marking, enabled[0])
        dict_marking = net.fire(dict_marking, names[0])
        assert pnet.codec.decode(marking) == dict_marking


def test_packed_net_rejects_weighted_arcs():
    net = PetriNet("weighted")
    net.add_place("p", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t", weight=2)
    assert not PackedNet.is_packable(net)
    with pytest.raises(UnsafeNetError):
        PackedNet(net)


def test_packed_net_detects_unsafe_firing():
    net = PetriNet("unsafe")
    net.add_place("p", tokens=1)
    net.add_place("q", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")  # fires a second token onto marked q
    pnet = PackedNet(net)
    with pytest.raises(UnsafeNetError):
        pnet.fire(pnet.initial, pnet.transition_index("t"))


def test_explore_falls_back_on_non_safe_nets():
    net = PetriNet("unsafe")
    net.add_place("p", tokens=1)
    net.add_place("q", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    graph = explore(net)  # must transparently use the dict engine
    assert not graph.is_packed
    assert graph.bound() == 2


def test_explore_forced_packed_raises_instead_of_downgrading():
    net = PetriNet("unsafe")
    net.add_place("p", tokens=1)
    net.add_place("q", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    with pytest.raises(UnsafeNetError):
        explore(net, packed=True)


def test_packed_and_legacy_reachability_agree_on_benchmark():
    net = benchmark_by_name("nowick").build().net
    packed = explore(net, packed=True)
    legacy = explore(net, packed=False)
    assert packed.is_packed and not legacy.is_packed
    assert packed.num_states == legacy.num_states
    assert [m.places for m in packed.markings] == [m.places for m in legacy.markings]
    assert packed.edges == legacy.edges
    assert packed.is_safe() and legacy.is_safe()


def test_packed_graph_marking_lookup_handles_unsafe_markings():
    net = _toggle_net()
    graph = explore(net, packed=True)
    assert graph.index_of(Marking({"p": 1})) == 0
    assert graph.index_of(Marking({"p": 2})) is None  # unsafe: unreachable
    assert graph.index_of(Marking({"nonexistent": 1})) is None  # unknown place
    assert not graph.contains(Marking({"nonexistent": 1}))


# ---------------------------------------------------------------------- #
# Lazy decode adapter
# ---------------------------------------------------------------------- #
def test_lazy_decoded_list_decodes_once_and_supports_growth():
    calls = []

    def decode(word):
        calls.append(word)
        return word * 10

    packed = [1, 2]
    view = LazyDecodedList(packed, decode)
    assert view[0] == 10
    assert view[0] == 10
    assert calls == [1]  # cached
    packed.append(3)  # storage grows during construction
    assert len(view) == 3
    assert list(view) == [10, 20, 30]
    assert view[-1] == 30
    assert 20 in view
    assert view[1:] == [20, 30]
    with pytest.raises(IndexError):
        view[3]
    with pytest.raises(IndexError):
        view[-4]
