"""Property-based tests (hypothesis) for the core data structures and the
unfolding/state-graph equivalence on randomly generated specifications."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.boolean import Cover, Cube, espresso
from repro.stategraph import build_state_graph, check_csc
from repro.stg import parallel_handshake
from repro.synthesis import synthesize, verify_implementation
from repro.unfolding import reachable_states, unfold


# ---------------------------------------------------------------------- #
# Cube / cover algebra
# ---------------------------------------------------------------------- #
def cube_strategy(nvars: int):
    return st.lists(
        st.sampled_from("01-"), min_size=nvars, max_size=nvars
    ).map(lambda chars: Cube.from_string("".join(chars)))


def cover_strategy(nvars: int, max_cubes: int = 5):
    return st.lists(cube_strategy(nvars), min_size=0, max_size=max_cubes).map(
        lambda cubes: Cover(nvars, cubes)
    )


@given(cube_strategy(5), cube_strategy(5))
def test_cube_intersection_is_semantic_intersection(a, b):
    product = a.intersect(b)
    expected = set(a.minterms()) & set(b.minterms())
    if product is None:
        assert expected == set()
    else:
        assert set(product.minterms()) == expected


@given(cube_strategy(5), cube_strategy(5))
def test_cube_containment_matches_minterms(a, b):
    assert a.contains(b) == (set(b.minterms()) <= set(a.minterms()))


@given(cube_strategy(6), cube_strategy(6))
def test_supercube_contains_both(a, b):
    union = a.supercube(b)
    assert union.contains(a) and union.contains(b)


@given(cover_strategy(4))
def test_cover_complement_partitions_space(cover):
    complement = cover.complement()
    assert cover.minterms() | complement.minterms() == set(range(16))
    assert cover.minterms() & complement.minterms() == set()


@given(cover_strategy(4), cover_strategy(4))
def test_cover_intersection_and_union_semantics(a, b):
    assert a.union(b).minterms() == a.minterms() | b.minterms()
    assert a.intersect(b).minterms() == a.minterms() & b.minterms()
    assert a.intersects(b) == bool(a.minterms() & b.minterms())


@given(cover_strategy(4))
def test_tautology_matches_enumeration(cover):
    assert cover.is_tautology() == (cover.minterms() == set(range(16)))


@given(cover_strategy(4), cover_strategy(4))
def test_cover_containment_matches_enumeration(a, b):
    assert a.contains_cover(b) == (b.minterms() <= a.minterms())


@given(cover_strategy(5, max_cubes=4), cover_strategy(5, max_cubes=2))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_espresso_preserves_the_function_on_the_care_set(on, dc):
    result = espresso(on, dc)
    on_minterms = on.minterms()
    dc_minterms = dc.minterms()
    minimized = result.cover.minterms()
    # The function may change only on the don't-care set.
    assert on_minterms <= minimized | dc_minterms
    assert minimized <= on_minterms | dc_minterms
    assert result.cover.literal_count <= max(on.literal_count, 1) or on.is_empty()


# ---------------------------------------------------------------------- #
# Unfolding vs State Graph on generated handshake controllers
# ---------------------------------------------------------------------- #
chains_strategy = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=3)


@given(chains_strategy)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_unfolding_recovers_exactly_the_reachable_states(chains):
    stg = parallel_handshake("prop", chains)
    segment = unfold(stg)
    graph = build_state_graph(stg)
    recovered = reachable_states(segment)
    assert recovered == {m.places: tuple(c) for m, c in zip(graph.markings, graph.codes)}


@given(chains_strategy)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_synthesis_methods_agree_on_generated_controllers(chains):
    stg = parallel_handshake("prop", chains)
    graph = build_state_graph(stg)
    assert check_csc(graph).satisfied
    approx = synthesize(stg, method="unfolding-approx")
    sg = synthesize(stg, method="sg-explicit")
    assert verify_implementation(stg, approx.implementation, state_graph=graph).ok
    assert verify_implementation(stg, sg.implementation, state_graph=graph).ok
    assert approx.literal_count == sg.literal_count
