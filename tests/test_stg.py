"""Unit tests for the STG model, the .g parser/writer and consistency."""

import pytest

from repro.stg import (
    STG,
    STGError,
    SignalTransition,
    SignalType,
    check_consistency,
    paper_example,
    parse_g,
    write_g,
)


def test_signal_transition_parsing():
    t = SignalTransition.parse("req+/2")
    assert t.signal == "req" and t.is_rising and t.index == 2
    assert t.label() == "req+/2"
    assert SignalTransition.parse("a-").target_value == 0
    with pytest.raises(Exception):
        SignalTransition.parse("++")


def test_signal_declaration_and_types():
    stg = STG("t")
    stg.add_signal("a", SignalType.INPUT, initial=0)
    stg.add_signal("x", SignalType.OUTPUT, initial=1)
    stg.add_signal("i", SignalType.INTERNAL, initial=0)
    assert stg.input_signals == ["a"]
    assert stg.implementable_signals == ["x", "i"]
    assert stg.initial_code() == (0, 1, 0)
    with pytest.raises(STGError):
        stg.add_signal("a", SignalType.OUTPUT)


def test_transition_for_undeclared_signal_rejected():
    stg = STG()
    with pytest.raises(STGError):
        stg.add_transition("a+")


def test_duplicate_labels_get_instance_indices():
    stg = STG()
    stg.add_signal("a", SignalType.OUTPUT)
    first = stg.add_transition("a+")
    second = stg.add_transition("a+")
    assert first == "a+"
    assert second == "a+/1"
    assert stg.label_of(second).signal == "a"
    assert stg.rising_transitions("a") == [first, second]


def test_connect_creates_implicit_place():
    stg = STG()
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    plus = stg.add_transition("a+")
    minus = stg.add_transition("a-")
    place = stg.connect(plus, minus, tokens=0)
    assert stg.net.place_preset(place) == {plus}
    assert stg.net.place_postset(place) == {minus}


def test_next_code_and_consistency_helper():
    stg = paper_example()
    code = stg.initial_code()
    assert stg.next_code(code, "a+") == (1, 0, 0)
    assert stg.code_consistent_with(code, "a+")
    assert not stg.code_consistent_with((1, 0, 0), "a+")


def test_infer_initial_state():
    stg = paper_example()
    stg._initial_values.clear()
    inferred = stg.infer_initial_state()
    assert inferred == {"a": 0, "b": 0, "c": 0}


def test_check_consistency_on_paper_example():
    report = check_consistency(paper_example())
    assert report.consistent
    assert report.num_states == 8


def test_check_consistency_detects_violation():
    stg = STG("bad")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    first = stg.add_transition("a+")
    second = stg.add_transition("a+")
    place = stg.connect(first, second)
    start = stg.add_place("start", tokens=1)
    stg.add_arc(start, first)
    report = check_consistency(stg)
    assert not report.consistent


VME_LIKE = """
.model small
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.initial_state req=0 ack=0
.end
"""


def test_parse_simple_g():
    stg = parse_g(VME_LIKE)
    assert stg.name == "small"
    assert stg.input_signals == ["req"]
    assert stg.output_signals == ["ack"]
    assert len(stg.transitions) == 4
    assert stg.initial_code() == (0, 0)
    report = check_consistency(stg)
    assert report.consistent
    assert report.num_states == 4


def test_parse_explicit_places_and_choice():
    text = """
.model choice
.inputs a b
.outputs x
.graph
p0 a+ b+
a+ x+/1
b+ x+/2
x+/1 p1
x+/2 p1
p1 x-
x- a-
x- b-
a- p0
b- p0
.marking { p0 }
.initial_state a=0 b=0 x=0
.end
"""
    stg = parse_g(text)
    assert len(stg.transitions_of_signal("x")) == 3
    assert stg.net.has_place("p0")


def test_writer_roundtrip_preserves_behaviour():
    stg = paper_example()
    text = write_g(stg)
    parsed = parse_g(text)
    assert sorted(parsed.signals) == sorted(stg.signals)
    original = check_consistency(stg)
    roundtrip = check_consistency(parsed)
    assert roundtrip.consistent
    assert roundtrip.num_states == original.num_states
    # Same set of reachable binary codes.
    original_codes = {tuple(code[stg.signal_index(s)] for s in sorted(stg.signals))
                      for code in original.codes.values()}
    roundtrip_codes = {tuple(code[parsed.signal_index(s)] for s in sorted(parsed.signals))
                       for code in roundtrip.codes.values()}
    assert original_codes == roundtrip_codes


def test_statistics():
    stats = paper_example().statistics()
    assert stats["signals"] == 3
    assert stats["places"] == 9
    assert stats["transitions"] == 8
