"""Integration tests: all synthesis methods produce correct, equivalent logic."""

import pytest

from repro.stategraph import build_state_graph
from repro.stg import (
    choice_controller,
    csc_conflict_example,
    figure4_example,
    muller_pipeline,
    paper_example,
    parallel_handshake,
    sequential_controller,
)
from repro.synthesis import (
    METHODS,
    approximate_signal_covers,
    covers_are_correct,
    exact_signal_covers,
    synthesize,
    synthesize_approx_from_unfolding,
    verify_implementation,
)
from repro.unfolding import unfold

EXAMPLES = [
    paper_example,
    figure4_example,
    choice_controller,
    lambda: parallel_handshake("hs", [3, 2]),
    lambda: sequential_controller("seq", 5),
    lambda: muller_pipeline(3),
]


@pytest.mark.parametrize("builder", EXAMPLES)
@pytest.mark.parametrize("method", METHODS)
def test_every_method_produces_a_correct_implementation(builder, method):
    stg = builder()
    result = synthesize(stg, method=method)
    assert not result.implementation.has_csc_conflict
    check = verify_implementation(stg, result.implementation)
    assert check.ok, check.errors


@pytest.mark.parametrize("builder", EXAMPLES)
def test_unfolding_methods_match_sg_literal_counts(builder):
    stg = builder()
    reference = synthesize(stg, method="sg-explicit").literal_count
    for method in ("unfolding-exact", "unfolding-approx"):
        assert synthesize(stg, method=method).literal_count == reference


def test_paper_example_gate_equation():
    result = synthesize(paper_example(), method="unfolding-approx")
    gate = result.implementation.gate_for("b")
    # C_On(b) minimises to a + c (Section 4.1 of the paper).
    assert gate.literal_count == 2
    assert gate.function.support() == ["a", "c"]


def test_timing_breakdown_is_reported():
    result = synthesize(paper_example(), method="unfolding-approx")
    row = result.timing_row()
    assert set(row) == {"UnfTim", "SynTim", "EspTim", "TotTim"}
    assert row["TotTim"] >= row["UnfTim"]


def test_csc_conflict_is_detected_by_all_methods():
    stg = csc_conflict_example()
    for method in ("sg-explicit", "unfolding-exact", "unfolding-approx"):
        result = synthesize(csc_conflict_example(), method=method)
        assert set(result.implementation.csc_conflicts) == {"x", "y"}
    with pytest.raises(ValueError):
        synthesize(stg, method="unfolding-approx", raise_on_csc=True)


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        synthesize(paper_example(), method="magic")


def test_exact_covers_from_segment_match_paper():
    stg = paper_example()
    segment = unfold(stg)
    on, off, conflict = exact_signal_covers(segment, "b")
    assert not conflict
    on_codes = {cube.to_string() for cube in on}
    assert on_codes == {"100", "110", "101", "111", "011", "001"}
    assert {cube.to_string() for cube in off} == {"000", "010"}


def test_approximated_covers_satisfy_definition_2_1():
    stg = paper_example()
    segment = unfold(stg)
    approx = approximate_signal_covers(segment, "b")
    on_exact, off_exact, _ = exact_signal_covers(segment, "b")
    # Before refinement the approximations must over-cover their exact sets.
    assert approx.on_cover.contains_cover(on_exact)
    assert approx.off_cover.contains_cover(off_exact)


def test_refined_covers_are_correct_for_all_outputs():
    stg = parallel_handshake("hs", [2, 2])
    segment = unfold(stg)
    result = synthesize_approx_from_unfolding(stg, segment=segment)
    for signal, covers in result.signal_covers.items():
        on_exact, off_exact, conflict = exact_signal_covers(segment, signal)
        assert not conflict
        assert covers_are_correct(covers.on_cover, covers.off_cover, on_exact, off_exact)


def test_refinement_statistics_are_exposed():
    stg = muller_pipeline(3)
    result = synthesize_approx_from_unfolding(stg)
    assert result.total_refinement_rounds >= 0
    assert result.total_parts_refined >= 0
    assert result.implementation.total_literals > 0


def test_c_element_architecture_from_sg_and_exact_unfolding():
    stg = parallel_handshake("hs", [2, 2])
    for method in ("sg-explicit", "unfolding-exact"):
        result = synthesize(stg, method=method, architecture="c-element")
        check = verify_implementation(stg, result.implementation)
        assert check.ok, check.errors
        gate = next(iter(result.implementation))
        assert gate.set_function is not None and gate.reset_function is not None


def test_approx_flow_rejects_other_architectures():
    with pytest.raises(ValueError):
        synthesize(paper_example(), method="unfolding-approx", architecture="c-element")


def test_implementation_report_rendering():
    implementation = synthesize(paper_example()).implementation
    text = implementation.to_text()
    assert "total literals" in text
    assert "b =" in text
    assert implementation.equations()
