"""Tests for the event-driven simulator and conformance verifier (repro.sim).

Positive direction: every CSC-conflict-free built-in benchmark synthesises
to an implementation the simulator verifies as hazard-free, conformant and
deadlock-free -- for all three architectures.  Negative direction: seeded
defects (a spurious product term, a widened set function, a constant-one
gate) are detected as hazards, drive conflicts and conformance violations
respectively.
"""

import pytest

from repro.boolean import BooleanFunction, Cover, Cube
from repro.cli import main
from repro.sim import (
    ARCHITECTURES,
    CircuitModel,
    RandomWalker,
    SpecEnvironment,
    Simulator,
    random_walk_trace,
    simulate_implementation,
    simulate_spec,
)
from repro.stg import (
    benchmark_by_name,
    csc_conflict_example,
    example_suite,
    figure4_example,
    muller_pipeline,
    paper_example,
    parse_g,
    table1_suite,
    write_g,
)
from repro.synthesis import synthesize

# Three-architecture sweeps stay on the smaller controllers so the suite is
# quick; the memory-element flows use exact synthesis, which dominates the
# runtime on the bigger stand-ins (the simulator itself stays fast there --
# see test_simulate_larger_benchmarks_acg).
SWEEP_ENTRIES = [
    entry
    for entry in table1_suite() + example_suite()
    if entry.expected_signals <= 9 and entry.csc_clean
]
LARGER_ACG = ["nak-pa", "ram-read-sbuf", "sbuf-ram-write", "par_4.csc"]


def _acg_implementation(stg):
    return synthesize(stg, method="sg-explicit", architecture="acg").implementation


# ---------------------------------------------------------------------- #
# Positive: hazard-freedom and conformance of synthesised circuits
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("entry", SWEEP_ENTRIES, ids=lambda e: e.name)
def test_benchmarks_verify_for_all_architectures(entry):
    stg = entry.build()
    reports = simulate_spec(stg, max_states=50000)
    assert [report.architecture for report in reports] == list(ARCHITECTURES)
    for report in reports:
        assert report.ok, "%s/%s: %s" % (
            entry.name,
            report.architecture,
            "; ".join(report.describe()),
        )
        assert report.verdict() == "ok"
        assert report.exploration.num_states > 0


@pytest.mark.parametrize("name", LARGER_ACG)
def test_simulate_larger_benchmarks_acg(name):
    stg = benchmark_by_name(name).build()
    implementation = synthesize(stg, method="unfolding-approx").implementation
    result = simulate_implementation(stg, implementation)
    assert result.ok
    assert result.hazard_free and result.conformant
    assert not result.truncated


def test_exploration_counts_states_and_events():
    stg = paper_example()
    result = simulate_implementation(stg, _acg_implementation(stg))
    # The closed loop visits exactly the 8 states of the specification's
    # state graph when the circuit is correct.
    assert result.num_states == 8
    assert result.num_events_fired >= result.num_states
    assert result.elapsed >= 0


def test_state_budget_truncates():
    stg = benchmark_by_name("nowick").build()
    result = simulate_implementation(stg, _acg_implementation(stg), max_states=5)
    assert result.truncated
    assert result.verdict() == "ok(truncated)"


# ---------------------------------------------------------------------- #
# Negative: seeded defects are detected
# ---------------------------------------------------------------------- #
def test_seeded_hazard_is_detected():
    """A spurious product term makes an excitation non-persistent."""
    stg = figure4_example()
    implementation = _acg_implementation(stg)
    gate = implementation.gates["c"]
    spurious = Cube.from_string("0" * stg.num_signals)  # minterm of a stable state
    gate.function = BooleanFunction(
        gate.function.names,
        Cover(stg.num_signals, list(gate.function.cover) + [spurious]),
    )
    result = simulate_implementation(stg, implementation)
    assert not result.hazard_free
    assert result.verdict() == "hazard"
    hazard = result.hazards[0]
    assert hazard.kind == "non-persistent"
    assert hazard.signal == "c"
    assert hazard.disabled_by is not None
    assert "non-persistent" in hazard.describe()


def test_drive_conflict_is_detected():
    """A widened set function overlaps the reset function: drive conflict."""
    stg = paper_example()
    implementation = synthesize(
        stg, method="sg-explicit", architecture="c-element"
    ).implementation
    gate = implementation.gates["b"]
    gate.set_function = BooleanFunction(
        gate.set_function.names, Cover.universe(stg.num_signals)
    )
    result = simulate_implementation(stg, implementation)
    assert any(h.kind == "drive-conflict" for h in result.hazards)
    assert result.verdict() == "hazard"


def test_conformance_violation_is_detected():
    """A constant-one gate fires an output the specification forbids."""
    stg = paper_example()
    implementation = _acg_implementation(stg)
    gate = implementation.gates["b"]
    gate.function = BooleanFunction(gate.function.names, Cover.universe(stg.num_signals))
    result = simulate_implementation(stg, implementation)
    assert not result.conformant
    assert result.violations[0].signal == "b"
    assert result.violations[0].change_label == "b+"
    assert "allows no" in result.violations[0].describe()


def test_random_walk_detects_seeded_violation():
    stg = paper_example()
    implementation = _acg_implementation(stg)
    implementation.gates["b"].function = BooleanFunction(
        ["a", "b", "c"], Cover.universe(3)
    )
    trace = random_walk_trace(stg, implementation, steps=200, seed=3)
    assert not trace.ok
    assert trace.violations


def test_csc_conflicts_are_reported_not_simulated():
    stg = csc_conflict_example()
    reports = simulate_spec(stg)
    assert all(report.skipped for report in reports)
    assert all(report.verdict() == "csc-conflict" for report in reports)
    assert not any(report.ok for report in reports)

    implementation = synthesize(stg, method="sg-explicit").implementation
    assert implementation.has_csc_conflict
    with pytest.raises(ValueError):
        CircuitModel(stg, implementation)


# ---------------------------------------------------------------------- #
# Random walks
# ---------------------------------------------------------------------- #
def test_random_walk_is_deterministic():
    stg = benchmark_by_name("nowick").build()
    implementation = _acg_implementation(stg)
    first = random_walk_trace(stg, implementation, steps=500, seed=42)
    second = random_walk_trace(stg, implementation, steps=500, seed=42)
    assert first.ok
    assert first.num_steps == 500
    assert first.labels() == second.labels()
    different = random_walk_trace(stg, implementation, steps=500, seed=43)
    assert first.labels() != different.labels()


def test_random_walk_on_large_pipeline():
    """Smoke-simulate a pipeline whose closed loop is too big to enumerate."""
    stg = muller_pipeline(8)
    implementation = synthesize(stg, method="unfolding-approx").implementation
    trace = random_walk_trace(stg, implementation, steps=5000, seed=1)
    assert trace.ok
    assert trace.num_steps == 5000
    # every implementable signal actually toggled during the walk
    fired = {step.signal for step in trace.steps}
    assert set(stg.implementable_signals) <= fired


def test_walker_reuse_and_trace_metadata():
    stg = paper_example()
    walker = RandomWalker(stg, _acg_implementation(stg), seed=9)
    trace = walker.run(steps=50)
    assert trace.stg_name == "paper_example"
    assert trace.architecture == "acg"
    assert trace.seed == 9
    assert len(trace.labels()) == trace.num_steps


# ---------------------------------------------------------------------- #
# Environment / circuit model units
# ---------------------------------------------------------------------- #
def test_environment_tracks_the_token_game():
    stg = paper_example()
    env = SpecEnvironment(stg)
    tracked = env.initial_states()
    assert tracked
    changes = env.enabled_changes(tracked)
    assert ("a", 1) in changes or ("c", 1) in changes
    # advancing through an allowed change keeps the game alive
    signal, target = sorted(changes)[0]
    advanced = env.advance(tracked, signal, target)
    assert advanced
    # an impossible change empties the tracked set
    assert env.advance(tracked, "b", 0) == frozenset()


def test_circuit_model_excitation_matches_implied_values():
    stg = paper_example()
    circuit = CircuitModel(stg, _acg_implementation(stg))
    code = circuit.initial_code()
    assert circuit.excitation(code) == {}  # all gates stable initially
    raised = circuit.fire(code, "a", 1)
    assert circuit.excitation(raised) == {"b": 1}


def test_simulator_event_ordering_is_deterministic():
    stg = paper_example()
    simulator = Simulator(stg, _acg_implementation(stg))
    code = simulator.circuit.initial_code()
    tracked = simulator.environment.initial_states()
    events = simulator.enabled_events(code, tracked)
    assert events == simulator.enabled_events(code, tracked)
    assert all(e.kind == "input" for e in events)


# ---------------------------------------------------------------------- #
# CLI integration
# ---------------------------------------------------------------------- #
def test_cli_simulate_benchmark(capsys):
    assert main(["simulate", "nowick"]) == 0
    out = capsys.readouterr().out
    assert "verdict" in out
    for architecture in ARCHITECTURES:
        assert architecture in out
    assert "ok" in out


def test_cli_simulate_with_walk(capsys):
    assert main(["simulate", "paper_example", "--walk-steps", "100", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "walk_steps" in out


def test_cli_simulate_single_architecture(capsys):
    assert main(["simulate", "sendr-done", "--architectures", "acg"]) == 0
    out = capsys.readouterr().out
    assert "c-element" not in out


def test_cli_export_roundtrip(tmp_path, capsys):
    path = tmp_path / "out.g"
    assert main(["export", "nowick", "-o", str(path)]) == 0
    text = path.read_text()
    assert ".model nowick" in text
    back = parse_g(text)
    original = benchmark_by_name("nowick").build()
    assert back.signal_types == original.signal_types

    assert main(["export", "nowick"]) == 0
    assert ".model nowick" in capsys.readouterr().out


def test_cli_export_then_simulate_g_file(tmp_path):
    """export -> simulate closes the loop on a file-based spec."""
    path = tmp_path / "spec.g"
    assert main(["export", "sendr-done", "-o", str(path)]) == 0
    assert main(["simulate", str(path), "--architectures", "acg"]) == 0


def test_cli_table1_conformance_column(capsys):
    assert (
        main(["table1", "--benchmarks", "sendr-done", "--methods", "unfolding-approx"])
        == 0
    )
    out = capsys.readouterr().out
    assert "Conf" in out
    assert "ok" in out

    assert (
        main(
            [
                "table1",
                "--benchmarks",
                "sendr-done",
                "--methods",
                "unfolding-approx",
                "--no-conformance",
            ]
        )
        == 0
    )
    assert "Conf" not in capsys.readouterr().out
