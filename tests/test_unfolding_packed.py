"""Packed unfolding engine: equivalence with the State Graph and the legacy
reference mode, concurrency-row correctness, and regressions for the
state-recovery bugfixes (marking-keyed dedup, hard-coded bottom id, cut key).
"""

import pytest

from repro.stategraph import build_state_graph
from repro.stg import STG, SignalType, muller_pipeline, paper_example, table1_suite
from repro.synthesis import exact_signal_covers, synthesize
from repro.unfolding import (
    UnfoldingError,
    cut_enables,
    enumerate_cuts,
    initial_cut,
    reachable_packed_states,
    reachable_states,
    unfold,
)


def _specs():
    specs = [(entry.name, entry.build) for entry in table1_suite()]
    for stages in range(2, 7):
        specs.append(
            ("muller_pipeline_%d" % stages, lambda s=stages: muller_pipeline(s))
        )
    return specs


SPECS = _specs()
SPEC_IDS = [name for name, _build in SPECS]
SMALL = [(name, build) for name, build in SPECS if build().num_signals <= 12]
SMALL_IDS = [name for name, _build in SMALL]


# ---------------------------------------------------------------------- #
# Unfolding / State Graph equivalence (codes included)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("name,build", SPECS, ids=SPEC_IDS)
def test_recovered_states_match_state_graph(name, build):
    stg = build()
    segment = unfold(stg)
    graph = build_state_graph(build())
    expected = {m.places: tuple(c) for m, c in zip(graph.markings, graph.codes)}
    assert reachable_states(segment) == expected


@pytest.mark.parametrize("name,build", SMALL, ids=SMALL_IDS)
def test_state_dedup_matches_legacy_reference(name, build):
    """The state-pruned walk and the per-cut legacy reference walk recover
    identical packed states, and the pruned walk never visits more cuts."""
    segment = unfold(build())
    packed = reachable_packed_states(segment)
    legacy = reachable_packed_states(segment, legacy=True)
    assert packed == legacy
    pruned_cuts = sum(1 for _ in enumerate_cuts(segment, dedup="state"))
    all_cuts = sum(1 for _ in enumerate_cuts(segment, dedup="cut"))
    assert pruned_cuts <= all_cuts
    assert pruned_cuts == len(packed)


@pytest.mark.parametrize("name,build", SMALL, ids=SMALL_IDS)
def test_exact_covers_and_csc_match_legacy_reference(name, build):
    stg = build()
    segment = unfold(stg)
    packed_states = reachable_packed_states(segment)
    legacy_states = reachable_packed_states(segment, legacy=True)
    for signal in stg.implementable_signals:
        on_p, off_p, csc_p = exact_signal_covers(segment, signal, packed_states)
        on_l, off_l, csc_l = exact_signal_covers(segment, signal, legacy_states)
        assert set(on_p.cubes) == set(on_l.cubes)
        assert set(off_p.cubes) == set(off_l.cubes)
        assert csc_p == csc_l


@pytest.mark.parametrize("name,build", SMALL, ids=SMALL_IDS)
def test_unfolding_exact_matches_sg_explicit(name, build):
    exact = synthesize(build(), method="unfolding-exact")
    sg = synthesize(build(), method="sg-explicit")
    assert exact.literal_count == sg.literal_count
    assert sorted(exact.implementation.csc_conflicts) == sorted(
        sg.implementation.csc_conflicts
    )


# ---------------------------------------------------------------------- #
# Packed relations vs first-principles definitions
# ---------------------------------------------------------------------- #
def _reference_config_conflict(segment, left_config, right_config):
    for eid in left_config:
        for condition in segment.events[eid].preset:
            for consumer in condition.consumers:
                if consumer.eid != eid and consumer.eid in right_config:
                    return True
    for eid in right_config:
        for condition in segment.events[eid].preset:
            for consumer in condition.consumers:
                if consumer.eid != eid and consumer.eid in left_config:
                    return True
    return False


def _reference_event_conflict(segment, left, right):
    if left.eid == right.eid:
        return False
    return _reference_config_conflict(
        segment, segment.ancestors_of(left), segment.ancestors_of(right)
    )


def _reference_condition_before(segment, first, second):
    producer = second.producer
    if first in producer.preset:
        return True
    ancestors = segment.ancestors_of(producer)
    return any(consumer.eid in ancestors for consumer in first.consumers)


def _reference_concurrent_conditions(segment, left, right):
    if left is right:
        return False
    if _reference_event_conflict(segment, left.producer, right.producer):
        return False
    if _reference_condition_before(segment, left, right):
        return False
    if _reference_condition_before(segment, right, left):
        return False
    return True


REFERENCE_SPECS = [
    ("paper_example", paper_example),
    ("muller_pipeline_3", lambda: muller_pipeline(3)),
    ("nowick", next(e for e in table1_suite() if e.name == "nowick").build),
    ("mp-forward-pkt", next(e for e in table1_suite() if e.name == "mp-forward-pkt").build),
]


@pytest.mark.parametrize(
    "name,build", REFERENCE_SPECS, ids=[n for n, _b in REFERENCE_SPECS]
)
def test_concurrency_rows_match_pairwise_definition(name, build):
    segment = unfold(build())
    for left in segment.conditions:
        row = segment.co_masks[left.cid]
        for right in segment.conditions:
            expected = _reference_concurrent_conditions(segment, left, right)
            assert bool(row >> right.cid & 1) == expected
            assert segment.concurrent_conditions(left, right) == expected


@pytest.mark.parametrize(
    "name,build", REFERENCE_SPECS, ids=[n for n, _b in REFERENCE_SPECS]
)
def test_event_relations_match_definitions(name, build):
    segment = unfold(build())
    events = segment.events
    for left in events:
        for right in events:
            expected_conflict = _reference_event_conflict(segment, left, right)
            assert segment.in_conflict(left, right) == expected_conflict
            ordered = segment.precedes(left, right) or segment.precedes(right, left)
            expected_co = (
                left.eid != right.eid and not ordered and not expected_conflict
            )
            assert segment.concurrent_events(left, right) == expected_co
        for condition in segment.conditions:
            expected = (
                not segment.in_conflict(left, condition.producer)
                and not segment.condition_precedes_event(condition, left)
                and not segment.event_precedes_condition(left, condition)
            )
            if left.is_bottom:
                expected = False
            assert segment.concurrent_event_condition(left, condition) == expected


# ---------------------------------------------------------------------- #
# Regression: marking-keyed state dedup masked CSC conflicts
# ---------------------------------------------------------------------- #
def _marking_code_collision_stg():
    """One marking reachable with two binary codes (inconsistent STG).

    Each individual firing is value-consistent, so the unfolder accepts the
    specification; only state recovery can see the collision.
    """
    stg = STG("collision")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    stg.add_signal("b", SignalType.OUTPUT, initial=0)
    p0 = stg.add_place("p0", tokens=1)
    p1 = stg.add_place("p1")
    a_plus = stg.add_transition("a+")
    b_plus = stg.add_transition("b+")
    stg.add_arc(p0, a_plus)
    stg.add_arc(p0, b_plus)
    stg.add_arc(a_plus, p1)
    stg.add_arc(b_plus, p1)
    return stg


def test_reachable_states_raises_on_marking_code_collision():
    segment = unfold(_marking_code_collision_stg())
    with pytest.raises(UnfoldingError, match="two codes"):
        reachable_states(segment)
    with pytest.raises(UnfoldingError, match="two codes"):
        reachable_states(segment, legacy=True)
    with pytest.raises(UnfoldingError, match="two codes"):
        reachable_packed_states(segment)


def test_collision_states_are_not_silently_collapsed():
    """Both codes of the shared marking are visible to the cut walk (the old
    ``setdefault`` kept only the first and dropped the second)."""
    segment = unfold(_marking_code_collision_stg())
    states = {
        (cut.marking, cut.code) for cut in enumerate_cuts(segment, dedup="state")
    }
    shared = {code for marking, code in states if marking == frozenset({"p1"})}
    assert shared == {(1, 0), (0, 1)}


# ---------------------------------------------------------------------- #
# Regression: hard-coded bottom event id in the excitation cut
# ---------------------------------------------------------------------- #
def test_bottom_excitation_cut_is_the_initial_cut():
    segment = unfold(paper_example())
    bottom = segment.bottom
    assert segment.minimal_excitation_cut_mask(bottom) == bottom.postset_mask
    assert set(segment.minimal_excitation_cut(bottom)) == set(bottom.postset)
    assert segment.excitation_code(bottom) == segment.initial_code
    assert segment.excitation_code_word(bottom) == segment.initial_code_word


# ---------------------------------------------------------------------- #
# Regression: cut identity is packed and cached; cut_enables lost the
# unused segment parameter
# ---------------------------------------------------------------------- #
def test_cut_key_is_the_packed_condition_mask():
    segment = unfold(paper_example())
    cut = initial_cut(segment)
    expected = 0
    for condition in segment.bottom.postset:
        expected |= 1 << condition.cid
    assert isinstance(cut.key, int)
    assert cut.key == expected
    assert cut.condition_mask == expected
    assert cut.conditions is cut.conditions  # decoded once, then cached
    assert set(cut.conditions) == set(segment.bottom.postset)


def test_cut_enables_is_a_mask_check():
    segment = unfold(paper_example())
    cut = initial_cut(segment)
    for condition in cut.conditions:
        for event in condition.consumers:
            expected = all(
                1 << c.cid & cut.condition_mask for c in event.preset
            )
            assert cut_enables(cut.condition_mask, event) == expected


def test_slice_states_are_deduplicated_and_packed():
    from repro.core import unpack_code
    from repro.unfolding import on_slices

    segment = unfold(paper_example())
    nsignals = len(segment.signal_table)
    for slice_ in on_slices(segment, "b"):
        packed = slice_.packed_states()
        assert len(packed) == len(set(packed))
        decoded = slice_.states()
        assert len(decoded) == len(packed)
        for (marking_word, code_word), (marking, code) in zip(packed, decoded):
            assert frozenset(segment.place_table.names_in(marking_word)) == marking
            assert unpack_code(code_word, nsignals) == code
