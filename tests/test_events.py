"""Tests for observability round 2: event streams, the live renderer,
the event schema, the dashboard delta column and the perf sentinel."""

import io
import json
import threading

import pytest

from repro.cli import main
from repro.obs import (
    EVENT_KINDS,
    CallbackSink,
    EventStream,
    FileSink,
    NULL_SPAN,
    Tracer,
    attach_stream,
    evaluate,
    format_report,
    render_dashboard,
    tracing,
    validate_event,
    validate_events_file,
)
from repro.obs.schema import TraceSchemaError, main as schema_main
from repro.obs.live import LiveRenderer
from repro.obs.sentinel import TRACKED_METRICS


def _collecting_stream(min_interval=0.0):
    events = []
    stream = EventStream([CallbackSink(events.append)], min_interval=min_interval)
    return stream, events


# ---------------------------------------------------------------------- #
# EventStream + tracer emit hooks
# ---------------------------------------------------------------------- #
def test_stream_emits_span_counter_progress_events():
    stream, events = _collecting_stream()
    tracer = Tracer("run")
    attach_stream(tracer, stream)
    with tracing(tracer=tracer) as t:
        with t.span("phase", engine="bdd") as span:
            span.counter("states", 7)
            span.progress(3, 9)
            span.append("pass_nodes", 42)
    kinds = [event["kind"] for event in events]
    assert kinds == [
        "span_open", "span_open", "counter", "progress", "series",
        "span_close", "span_close",
    ]
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert all(event["t"] >= 0 for event in events)
    # Paths are slash-joined from the root.
    assert events[1]["path"] == "run/phase"
    assert events[1]["attrs"] == {"engine": "bdd"}
    assert events[3]["done"] == 3 and events[3]["total"] == 9
    # The closing event snapshots the span's counters, progress included.
    close = events[-2]
    assert close["counters"]["states"] == 7
    assert close["counters"]["progress_done"] == 3
    for event in events:
        validate_event(event)


def test_progress_records_gauges_without_stream():
    tracer = Tracer("run")
    with tracing(tracer=tracer) as t:
        with t.span("phase") as span:
            span.progress(10)
            span.progress(12, 20)
    phase = tracer.root.children[0]
    assert phase.counters["progress_done"] == 12
    assert phase.counters["progress_total"] == 20


def test_null_span_progress_is_inert():
    assert NULL_SPAN.progress(1, 2) is None
    assert NULL_SPAN.counters == {}


def test_throttle_drops_rapid_counter_events_but_not_span_events():
    stream, events = _collecting_stream(min_interval=60.0)
    tracer = Tracer("run")
    attach_stream(tracer, stream)
    with tracing(tracer=tracer) as t:
        with t.span("phase") as span:
            for _ in range(100):
                span.counter("states")
    kinds = [event["kind"] for event in events]
    # 100 counter updates collapse to the first; open/close always pass.
    assert kinds.count("counter") == 1
    assert kinds.count("span_open") == 2
    assert kinds.count("span_close") == 2
    # The trace itself keeps every increment regardless of throttling.
    assert tracer.root.children[0].counters["states"] == 100


def test_file_sink_writes_validating_jsonl(tmp_path):
    path = str(tmp_path / "events.jsonl")
    stream = EventStream([FileSink(path)], min_interval=0.0)
    tracer = Tracer("run")
    attach_stream(tracer, stream)
    with tracing(tracer=tracer) as t:
        with t.span("phase") as span:
            span.progress(1, 2)
    stream.close()
    count = validate_events_file(path)
    assert count == 5  # root open, phase open, progress, phase close, root close
    lines = [json.loads(line) for line in open(path)]
    assert [event["seq"] for event in lines] == list(range(5))


def test_stream_seq_monotonic_under_thread_contention():
    stream, events = _collecting_stream()
    tracer = Tracer("run")
    attach_stream(tracer, stream)
    errors = []

    def worker(i):
        try:
            for j in range(50):
                with tracer.span("w%d" % i) as span:
                    span.counter("ticks")
        except Exception as exc:  # pragma: no cover - diagnostic only
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    # 8 threads x 50 spans, opened and closed, plus the root open.
    assert sum(1 for e in events if e["kind"] == "span_open") == 401
    assert sum(1 for e in events if e["kind"] == "span_close") == 400


# ---------------------------------------------------------------------- #
# Event schema
# ---------------------------------------------------------------------- #
def test_validate_event_rejects_malformed_records():
    good = {"seq": 0, "t": 0.0, "kind": "progress", "path": "a/b"}
    validate_event(good)
    for bad in [
        {"t": 0.0, "kind": "progress", "path": "a"},          # missing seq
        {"seq": -1, "t": 0.0, "kind": "progress", "path": "a"},
        {"seq": 0, "t": -1, "kind": "progress", "path": "a"},
        {"seq": 0, "t": 0.0, "kind": "nonsense", "path": "a"},
        {"seq": 0, "t": 0.0, "kind": "progress", "path": 3},
        {"seq": 0, "t": 0.0, "kind": "progress", "path": "a", "done": "x"},
        [],
    ]:
        with pytest.raises(TraceSchemaError):
            validate_event(bad)


def test_validate_events_file_rejects_non_monotonic_seq(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        '{"seq": 0, "t": 0.0, "kind": "span_open", "path": "r"}\n'
        '{"seq": 0, "t": 0.1, "kind": "span_close", "path": "r"}\n'
    )
    with pytest.raises(TraceSchemaError, match="monotonic"):
        validate_events_file(str(path))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(TraceSchemaError, match="no events"):
        validate_events_file(str(empty))


def test_schema_cli_validates_mixed_trace_and_event_files(tmp_path):
    trace_path = tmp_path / "trace.json"
    tracer = Tracer("run")
    with tracing(tracer=tracer) as t:
        with t.span("phase"):
            pass
    tracer.write_json(str(trace_path))

    events_path = tmp_path / "events.jsonl"
    events_path.write_text(
        '{"seq": 0, "t": 0.0, "kind": "span_open", "path": "r"}\n'
        '{"seq": 1, "t": 0.1, "kind": "span_close", "path": "r"}\n'
    )
    assert schema_main([str(trace_path), str(events_path)]) == 0

    broken = tmp_path / "broken.jsonl"
    broken.write_text('{"seq": 0, "kind": "span_open", "path": "r"}\n')
    assert schema_main([str(trace_path), str(broken)]) == 1


# ---------------------------------------------------------------------- #
# Live renderer
# ---------------------------------------------------------------------- #
def test_live_renderer_derives_progress_and_batch_lines():
    buffer = io.StringIO()
    renderer = LiveRenderer(stream=buffer, interval=0.0, tty=False)
    stream = EventStream([renderer], min_interval=0.0)
    tracer = Tracer("run")
    attach_stream(tracer, stream)
    with tracing(tracer=tracer) as t:
        with t.span("reachability") as span:
            span.progress(512, 1024)
    stream.emit("heartbeat", "batch", row="nowick", pid=123, age=0.4)
    stream.emit("stall", "batch", row="nowick", silent_for=2.5)
    stream.emit("row", "batch", row="nowick", outcome="timeout", elapsed=3.0)
    renderer.close()
    out = buffer.getvalue()
    assert "run/reachability" in out
    assert "512/1024" in out
    assert "[beat] nowick pid=123" in out
    assert "[STALL] nowick silent for 2.5s" in out
    assert "[row] nowick outcome=timeout" in out


def test_live_renderer_tty_rewrites_in_place():
    buffer = io.StringIO()
    renderer = LiveRenderer(stream=buffer, interval=0.0, tty=True)
    renderer({"seq": 0, "t": 0.0, "kind": "span_open", "path": "a"})
    renderer({"seq": 1, "t": 0.1, "kind": "progress", "path": "a",
              "done": 1, "total": 2})
    renderer.close()
    out = buffer.getvalue()
    assert "\r" in out
    assert out.endswith("\n")


# ---------------------------------------------------------------------- #
# Dashboard delta column
# ---------------------------------------------------------------------- #
def test_dashboard_shows_delta_vs_previous_entry():
    history = [
        {"generated_by": "test",
         "muller8_sg_explicit": {"packed_engine": {"seconds": 0.5}}},
        {"generated_by": "test",
         "muller8_sg_explicit": {"packed_engine": {"seconds": 0.6}}},
    ]
    text = render_dashboard(history)
    assert "0.600 (+20.0%)" in text
    # The first entry has no predecessor: plain value, no delta.
    assert "0.500 (" not in text


# ---------------------------------------------------------------------- #
# Perf sentinel
# ---------------------------------------------------------------------- #
def _sentinel_entry(rate=1000.0, seconds=1.0, nodes=50000):
    return {
        "muller8_sg_explicit": {"packed_engine": {"seconds": seconds}},
        "muller12_unfolding_state_recovery": {
            "packed_state_dedup": {"states_per_sec": rate}
        },
        "csc_check_states_per_sec": {"states_per_sec": rate},
        "csc_resolution_largest": {"seconds": seconds},
        "symbolic_reachability_states_per_sec": {"states_per_sec": rate},
        "symbolic_saturation_muller24": {"seconds": seconds},
        "explicit_kernel_states_per_sec": {
            "numpy": {"states_per_sec": rate}
        },
        "bdd_reorder_muller16": {"peak_nodes_saturation": nodes},
    }


def test_sentinel_passes_on_stable_history():
    history = [_sentinel_entry() for _ in range(4)]
    checks = evaluate(history)
    assert not any(check.regressed for check in checks)
    assert "ok:" in format_report(checks)


def test_sentinel_flags_rate_drop_and_seconds_rise():
    history = [_sentinel_entry() for _ in range(3)]
    history.append(_sentinel_entry(rate=100.0))  # rates collapse: regression
    checks = evaluate(history)
    regressed = {check.metric.key for check in checks if check.regressed}
    assert "csc_check_states_per_sec" in regressed
    assert "symbolic_reach_states_per_sec" in regressed
    # seconds unchanged: the lower-is-better metrics stay green.
    assert "muller8_explicit_seconds" not in regressed
    assert "REGRESSION" in format_report(checks)

    history = [_sentinel_entry() for _ in range(3)]
    history.append(_sentinel_entry(seconds=10.0))  # wall clocks blow up
    checks = evaluate(history)
    regressed = {check.metric.key for check in checks if check.regressed}
    assert "muller8_explicit_seconds" in regressed
    assert "csc_resolution_seconds" in regressed
    assert "csc_check_states_per_sec" not in regressed


def test_sentinel_improvements_never_flag():
    history = [_sentinel_entry() for _ in range(3)]
    history.append(_sentinel_entry(rate=10000.0, seconds=0.1, nodes=10000))
    checks = evaluate(history)
    assert not any(check.regressed for check in checks)


def test_sentinel_uses_median_of_prior_runs():
    # One outlier baseline entry must not move the bar: the median of
    # (1000, 1000, 10) is 1000, so a latest of 900 is within 40%.
    history = [
        _sentinel_entry(rate=1000.0),
        _sentinel_entry(rate=10.0),
        _sentinel_entry(rate=1000.0),
        _sentinel_entry(rate=900.0),
    ]
    checks = evaluate(history)
    assert not any(check.regressed for check in checks)


def test_sentinel_skips_missing_metrics():
    history = [{"muller8_sg_explicit": {"packed_engine": {"seconds": 1.0}}}
               for _ in range(3)]
    checks = evaluate(history)
    skipped = {check.metric.key for check in checks if check.skipped}
    assert "csc_check_states_per_sec" in skipped
    assert not any(check.regressed for check in checks)
    # A single entry has no baseline at all: everything skips, nothing fails.
    checks = evaluate([_sentinel_entry()])
    assert all(check.skipped for check in checks)
    with pytest.raises(ValueError):
        evaluate([])


def test_sentinel_threshold_override():
    history = [_sentinel_entry() for _ in range(3)]
    history.append(_sentinel_entry(seconds=1.2))  # +20%
    assert not any(check.regressed for check in evaluate(history))
    checks = evaluate(history, threshold=0.10)
    assert any(
        check.regressed and check.metric.key == "muller8_explicit_seconds"
        for check in checks
    )


def test_tracked_metrics_cover_both_directions():
    directions = {metric.direction for metric in TRACKED_METRICS}
    assert directions == {"higher", "lower"}


# ---------------------------------------------------------------------- #
# CLI integration
# ---------------------------------------------------------------------- #
def test_cli_table1_events_flag_writes_valid_stream(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    assert main([
        "table1", "--benchmarks", "sendr-done",
        "--methods", "sg-explicit", "--events", str(path),
    ]) == 0
    assert "# wrote events" in capsys.readouterr().out
    count = validate_events_file(str(path))
    assert count >= 5
    events = [json.loads(line) for line in open(str(path))]
    assert events[0]["kind"] == "span_open" and events[0]["path"] == "table1"
    assert events[-1]["kind"] == "span_close" and events[-1]["path"] == "table1"
    assert any(event["kind"] == "progress" for event in events)
    assert all(event["kind"] in EVENT_KINDS for event in events)


def test_cli_dashboard_check_exit_codes(tmp_path, capsys):
    stable = tmp_path / "stable.json"
    entries = [_sentinel_entry() for _ in range(4)]
    stable.write_text(json.dumps({"history": entries}))
    assert main(["dashboard", str(stable), "--check"]) == 0
    assert "ok:" in capsys.readouterr().out

    regressing = tmp_path / "regressing.json"
    entries = [_sentinel_entry() for _ in range(3)] + [
        _sentinel_entry(rate=10.0, seconds=30.0)
    ]
    regressing.write_text(json.dumps({"history": entries}))
    assert main(["dashboard", str(regressing), "--check"]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # --threshold tightens every limit from the command line.
    mild = tmp_path / "mild.json"
    entries = [_sentinel_entry() for _ in range(3)] + [_sentinel_entry(seconds=1.2)]
    mild.write_text(json.dumps({"history": entries}))
    assert main(["dashboard", str(mild), "--check"]) == 0
    capsys.readouterr()
    assert main(["dashboard", str(mild), "--check", "--threshold", "10"]) == 1
    assert "REGRESSION" in capsys.readouterr().out
