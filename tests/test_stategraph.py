"""Tests for State Graph construction, regions and coding checks."""

import pytest

from repro.boolean import Cover
from repro.petrinet import StateSpaceLimitExceeded
from repro.stategraph import (
    InconsistentSTGError,
    SignalRegions,
    build_state_graph,
    check_csc,
    check_output_persistency,
    check_usc,
    compute_regions,
    dc_set_cover,
)
from repro.stg import STG, SignalType, csc_conflict_example, muller_pipeline, paper_example


def test_build_state_graph_codes_are_consistent():
    graph = build_state_graph(paper_example())
    for source, transition, target in graph.edges:
        label = graph.stg.label_of(transition)
        assert graph.codes[source][graph.stg.signal_index(label.signal)] == label.source_value
        assert graph.codes[target][graph.stg.signal_index(label.signal)] == label.target_value


def test_state_budget_enforced():
    with pytest.raises(StateSpaceLimitExceeded):
        build_state_graph(muller_pipeline(4), max_states=5)


def test_inconsistent_stg_detected():
    stg = STG("bad")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    t1 = stg.add_transition("a+")
    t2 = stg.add_transition("a+")
    start = stg.add_place("s", tokens=1)
    stg.add_arc(start, t1)
    stg.connect(t1, t2)
    with pytest.raises(InconsistentSTGError):
        build_state_graph(stg)


def test_regions_of_paper_example_signal_b():
    graph = build_state_graph(paper_example())
    regions = SignalRegions(graph, "b")
    on_codes = {"".join(map(str, graph.codes[s])) for s in regions.on_states}
    off_codes = {"".join(map(str, graph.codes[s])) for s in regions.off_states}
    assert on_codes == {"100", "110", "101", "111", "011", "001"}
    assert off_codes == {"000", "010"}
    assert regions.partition_is_complete()
    # ER(b+) are the states where b+ is enabled.
    er_codes = {"".join(map(str, graph.codes[s])) for s in regions.er_plus}
    assert er_codes == {"100", "101", "001"}


def test_dc_set_cover_is_complement_of_reachable():
    graph = build_state_graph(paper_example())
    dc = dc_set_cover(graph)
    assert dc.is_empty()  # all 8 codes of the 3-signal space are reachable

    graph2 = build_state_graph(muller_pipeline(1))
    dc2 = dc_set_cover(graph2)
    reachable = {int("".join(map(str, reversed(code))), 2) for code in graph2.codes}
    assert dc2.minterms() == set(range(2 ** 3)) - reachable


def test_compute_regions_only_for_implementable_signals():
    graph = build_state_graph(paper_example())
    regions = compute_regions(graph)
    assert set(regions) == {"b"}


def test_usc_and_csc_on_good_and_bad_examples():
    good = build_state_graph(paper_example())
    assert check_usc(good).satisfied
    assert check_csc(good).satisfied

    bad = build_state_graph(csc_conflict_example())
    assert not check_usc(bad).satisfied
    assert not check_csc(bad).satisfied
    assert check_csc(bad).num_conflicts >= 1


def test_output_persistency_violation_detected():
    # An output in structural conflict with an input: firing the input
    # disables the excited output.
    stg = STG("nonpersistent")
    stg.add_signal("i", SignalType.INPUT, initial=0)
    stg.add_signal("x", SignalType.OUTPUT, initial=0)
    p = stg.add_place("p", tokens=1)
    i_plus = stg.add_transition("i+")
    x_plus = stg.add_transition("x+")
    stg.add_arc(p, i_plus)
    stg.add_arc(p, x_plus)
    stg.add_arc(i_plus, stg.add_place("pi"))
    stg.add_arc(x_plus, stg.add_place("px"))
    graph = build_state_graph(stg)
    violations = check_output_persistency(graph)
    assert violations
    assert violations[0].disabled == "x+"


def test_implied_value_and_excited_signals():
    graph = build_state_graph(paper_example())
    initial = 0
    assert graph.signal_value(initial, "b") == 0
    assert graph.implied_value(initial, "b") == 0
    assert graph.excited_signals(initial) == {"a", "c"}
