"""Tests for State Graph construction, regions and coding checks."""

import pytest

from repro.boolean import Cover
from repro.petrinet import StateSpaceLimitExceeded
from repro.stategraph import (
    InconsistentSTGError,
    SignalRegions,
    StateGraph,
    build_state_graph,
    check_csc,
    check_output_persistency,
    check_usc,
    compute_regions,
    dc_set_cover,
)
from repro.stg import (
    STG,
    SignalType,
    csc_arbiter,
    csc_conflict_example,
    muller_pipeline,
    paper_example,
    table1_suite,
    vme_bus_controller,
)


def test_build_state_graph_codes_are_consistent():
    graph = build_state_graph(paper_example())
    for source, transition, target in graph.edges:
        label = graph.stg.label_of(transition)
        assert graph.codes[source][graph.stg.signal_index(label.signal)] == label.source_value
        assert graph.codes[target][graph.stg.signal_index(label.signal)] == label.target_value


def test_state_budget_enforced():
    with pytest.raises(StateSpaceLimitExceeded):
        build_state_graph(muller_pipeline(4), max_states=5)


def test_inconsistent_stg_detected():
    stg = STG("bad")
    stg.add_signal("a", SignalType.OUTPUT, initial=0)
    t1 = stg.add_transition("a+")
    t2 = stg.add_transition("a+")
    start = stg.add_place("s", tokens=1)
    stg.add_arc(start, t1)
    stg.connect(t1, t2)
    with pytest.raises(InconsistentSTGError):
        build_state_graph(stg)


def test_regions_of_paper_example_signal_b():
    graph = build_state_graph(paper_example())
    regions = SignalRegions(graph, "b")
    on_codes = {"".join(map(str, graph.codes[s])) for s in regions.on_states}
    off_codes = {"".join(map(str, graph.codes[s])) for s in regions.off_states}
    assert on_codes == {"100", "110", "101", "111", "011", "001"}
    assert off_codes == {"000", "010"}
    assert regions.partition_is_complete()
    # ER(b+) are the states where b+ is enabled.
    er_codes = {"".join(map(str, graph.codes[s])) for s in regions.er_plus}
    assert er_codes == {"100", "101", "001"}


def test_dc_set_cover_is_complement_of_reachable():
    graph = build_state_graph(paper_example())
    dc = dc_set_cover(graph)
    assert dc.is_empty()  # all 8 codes of the 3-signal space are reachable

    graph2 = build_state_graph(muller_pipeline(1))
    dc2 = dc_set_cover(graph2)
    reachable = {int("".join(map(str, reversed(code))), 2) for code in graph2.codes}
    assert dc2.minterms() == set(range(2 ** 3)) - reachable


def test_compute_regions_only_for_implementable_signals():
    graph = build_state_graph(paper_example())
    regions = compute_regions(graph)
    assert set(regions) == {"b"}


def test_usc_and_csc_on_good_and_bad_examples():
    good = build_state_graph(paper_example())
    assert check_usc(good).satisfied
    assert check_csc(good).satisfied

    bad = build_state_graph(csc_conflict_example())
    assert not check_usc(bad).satisfied
    assert not check_csc(bad).satisfied
    assert check_csc(bad).num_conflicts >= 1


def test_csc_report_on_empty_graph():
    """A graph with no states has no conflicts and satisfies both checks."""
    stg = paper_example()
    empty = StateGraph(stg)
    for report in (check_usc(empty), check_csc(empty)):
        assert report.satisfied
        assert bool(report)
        assert report.conflicts == []
        assert report.num_conflicts == 0


def test_usc_violated_but_csc_satisfied():
    """Equal codes exciting only *inputs* differently break USC, not CSC.

    Two rounds ``a+ x+ a- x-`` / ``b+ x+ b- x-`` (``a``, ``b`` inputs):
    the all-zero code is reached once exciting ``a+`` and once exciting
    ``b+``, but the implementable signal ``x`` behaves identically in both.
    """
    stg = STG("usc_only")
    stg.add_signal("a", SignalType.INPUT, initial=0)
    stg.add_signal("b", SignalType.INPUT, initial=0)
    stg.add_signal("x", SignalType.OUTPUT, initial=0)
    a_plus = stg.add_transition("a+")
    a_minus = stg.add_transition("a-")
    b_plus = stg.add_transition("b+")
    b_minus = stg.add_transition("b-")
    x_plus_a = stg.add_transition("x+")
    x_minus_a = stg.add_transition("x-")
    x_plus_b = stg.add_transition("x+")
    x_minus_b = stg.add_transition("x-")
    stg.connect(a_plus, x_plus_a)
    stg.connect(x_plus_a, a_minus)
    stg.connect(a_minus, x_minus_a)
    stg.connect(x_minus_a, b_plus)
    stg.connect(b_plus, x_plus_b)
    stg.connect(x_plus_b, b_minus)
    stg.connect(b_minus, x_minus_b)
    stg.set_marking([stg.connect(x_minus_b, a_plus)])

    graph = build_state_graph(stg)
    usc = check_usc(graph)
    csc = check_csc(graph)
    assert not usc.satisfied
    assert csc.satisfied
    assert usc.num_conflicts >= 1
    assert csc.conflicts == []


def test_conflict_pairs_reported_sorted():
    for build in (csc_conflict_example, vme_bus_controller, lambda: csc_arbiter(4)):
        graph = build_state_graph(build())
        for report in (check_usc(graph), check_csc(graph)):
            assert report.conflicts == sorted(report.conflicts)
            assert all(left < right for left, right in report.conflicts)


@pytest.mark.parametrize(
    "entry",
    [e for e in table1_suite() if e.expected_signals <= 14],
    ids=lambda e: e.name,
)
def test_conflict_sets_equal_between_packed_and_legacy(entry):
    stg = entry.build()
    packed = build_state_graph(stg, packed=True)
    legacy = build_state_graph(entry.build(), packed=False)
    for check in (check_usc, check_csc):
        assert check(packed).conflicts == check(legacy).conflicts


def test_conflict_sets_equal_between_packed_and_legacy_non_csc():
    for build in (csc_conflict_example, vme_bus_controller, lambda: csc_arbiter(4)):
        packed = build_state_graph(build(), packed=True)
        legacy = build_state_graph(build(), packed=False)
        for check in (check_usc, check_csc):
            report_packed = check(packed)
            report_legacy = check(legacy)
            assert not report_packed.satisfied or check is check_csc
            assert report_packed.conflicts == report_legacy.conflicts


def test_output_persistency_violation_detected():
    # An output in structural conflict with an input: firing the input
    # disables the excited output.
    stg = STG("nonpersistent")
    stg.add_signal("i", SignalType.INPUT, initial=0)
    stg.add_signal("x", SignalType.OUTPUT, initial=0)
    p = stg.add_place("p", tokens=1)
    i_plus = stg.add_transition("i+")
    x_plus = stg.add_transition("x+")
    stg.add_arc(p, i_plus)
    stg.add_arc(p, x_plus)
    stg.add_arc(i_plus, stg.add_place("pi"))
    stg.add_arc(x_plus, stg.add_place("px"))
    graph = build_state_graph(stg)
    violations = check_output_persistency(graph)
    assert violations
    assert violations[0].disabled == "x+"


def test_implied_value_and_excited_signals():
    graph = build_state_graph(paper_example())
    initial = 0
    assert graph.signal_value(initial, "b") == 0
    assert graph.implied_value(initial, "b") == 0
    assert graph.excited_signals(initial) == {"a", "c"}
