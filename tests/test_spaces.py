"""Equivalence suite for the explicit vs symbolic StateSpace backends.

The symbolic engine must agree with the explicit one on every protocol
query -- state counts, per-signal on/off/excitation sets, implied values,
USC/CSC conflict reports -- across the Table 1 suite, the Muller-pipeline
family and the non-CSC generators.  On top of the equivalence checks this
file guards the tentpole property: ``method="sg-bdd"`` never builds the
explicit State Graph, and honours the caller's ``max_states`` bound (the
regression for the old ``_build_graph_via_bdd`` limit-override bug).
"""

import pytest

import repro.spaces.explicit as spaces_explicit
import repro.stategraph.stategraph as stategraph_module
from repro.petrinet import StateSpaceLimitExceeded
from repro.spaces import (
    CodingReport,
    ExplicitStateSpace,
    SymbolicStateSpace,
    build_state_space,
)
from repro.stategraph import build_state_graph, check_csc, check_usc
from repro.stg import (
    benchmark_by_name,
    csc_arbiter,
    csc_conflict_example,
    muller_pipeline,
    table1_suite,
    vme_bus_controller,
)
from repro.stg.signals import Direction
from repro.synthesis import synthesize, verify_implementation


def _specs():
    """(id, builder) pairs: Table 1 + muller 2..8 + non-CSC generators."""
    pairs = [(entry.name, entry.build) for entry in table1_suite()]
    for stages in range(2, 9):
        pairs.append(
            ("muller_pipeline_%d" % stages, lambda n=stages: muller_pipeline(n))
        )
    pairs.append(("vme_read", vme_bus_controller))
    pairs.append(("csc_conflict", csc_conflict_example))
    pairs.append(("csc_arbiter_4", lambda: csc_arbiter(4)))
    pairs.append(("csc_arbiter_8", lambda: csc_arbiter(8)))
    return pairs


SPECS = _specs()


@pytest.fixture(scope="module")
def spaces():
    """One (explicit, symbolic) space pair per spec, built once."""
    cache = {}
    for name, build in SPECS:
        stg = build()
        cache[name] = (
            build_state_space(stg, engine="explicit"),
            build_state_space(stg, engine="bdd"),
            stg,
        )
    return cache


@pytest.mark.parametrize("name", [name for name, _build in SPECS])
def test_state_and_code_counts_agree(spaces, name):
    explicit, symbolic, _stg = spaces[name]
    assert explicit.num_states == symbolic.num_states
    assert explicit.num_codes == symbolic.num_codes
    assert explicit.reachable_code_words() == symbolic.reachable_code_words()


@pytest.mark.parametrize("name", [name for name, _build in SPECS])
def test_per_signal_regions_agree(spaces, name):
    explicit, symbolic, stg = spaces[name]
    for signal in stg.signals:
        for direction in (Direction.PLUS, Direction.MINUS):
            assert explicit.er_codes(signal, direction) == symbolic.er_codes(
                signal, direction
            ), (signal, direction)
            assert explicit.er_size(signal, direction) == symbolic.er_size(
                signal, direction
            ), (signal, direction)
        for value in (0, 1):
            assert explicit.quiescent_codes(signal, value) == symbolic.quiescent_codes(
                signal, value
            ), (signal, value)
        # on/off sets are exactly the implied-value-1 / implied-value-0
        # states, so their agreement is the implied-value equivalence.
        assert explicit.on_codes(signal) == symbolic.on_codes(signal), signal
        assert explicit.off_codes(signal) == symbolic.off_codes(signal), signal
        assert explicit.on_size(signal) == symbolic.on_size(signal), signal
        assert explicit.off_size(signal) == symbolic.off_size(signal), signal


@pytest.mark.parametrize("name", [name for name, _build in SPECS])
def test_usc_csc_reports_agree(spaces, name):
    explicit, symbolic, _stg = spaces[name]
    for kind in ("check_usc", "check_csc"):
        left = getattr(explicit, kind)()
        right = getattr(symbolic, kind)()
        assert isinstance(left, CodingReport) and isinstance(right, CodingReport)
        assert left.satisfied == right.satisfied, kind
        assert left.num_pairs == right.num_pairs, kind
        assert left.conflict_code_words == right.conflict_code_words, kind
        assert left.conflicting_signals == right.conflicting_signals, kind
    assert explicit.signature_groups() == symbolic.signature_groups()


@pytest.mark.parametrize("name", [name for name, _build in SPECS])
def test_symbolic_covers_are_sound(spaces, name):
    """Symbolic covers contain the exact sets and never leak onto the
    opposite set (they may use unreachable codes as don't cares)."""
    explicit, symbolic, stg = spaces[name]
    for signal in stg.implementable_signals:
        on = explicit.on_codes(signal)
        off = explicit.off_codes(signal)
        on_cover = symbolic.on_cover(signal)
        off_cover = symbolic.off_cover(signal)
        for word in on:
            assert any(cube.covers_minterm(word) for cube in on_cover), (
                signal,
                "on word uncovered",
                word,
            )
            # leak check: an on word outside the off cover, unless the
            # signal genuinely conflicts (then on/off overlap on the word)
            if word not in off:
                assert not any(cube.covers_minterm(word) for cube in off_cover)
        for word in off:
            assert any(cube.covers_minterm(word) for cube in off_cover)
            if word not in on:
                assert not any(cube.covers_minterm(word) for cube in on_cover)
    dc_cover = symbolic.dc_cover()
    for word in explicit.reachable_code_words():
        assert not any(cube.covers_minterm(word) for cube in dc_cover)


def test_stategraph_checks_accept_spaces():
    """check_usc/check_csc dispatch on either engine's StateSpace."""
    stg = vme_bus_controller()
    for engine in ("explicit", "bdd"):
        space = build_state_space(stg, engine=engine)
        usc = check_usc(space)
        csc = check_csc(space)
        assert not csc.satisfied and csc.num_conflicts == 1
        assert not usc.satisfied
    graph_report = check_csc(build_state_graph(stg))
    assert graph_report.num_conflicts == 1


def test_conflict_cores_accept_both_engines():
    from repro.encoding import conflict_cores, num_conflict_pairs, separation_gain

    stg = csc_arbiter(4)
    explicit_cores = conflict_cores(build_state_space(stg, engine="explicit"))
    symbolic_cores = conflict_cores(build_state_space(stg, engine="bdd"))
    assert len(explicit_cores) == len(symbolic_cores) == 1
    left, right = explicit_cores[0], symbolic_cores[0]
    assert left.code_word == right.code_word
    assert left.signatures == right.signatures
    assert left.group_sizes == right.group_sizes
    assert left.num_pairs == right.num_pairs
    assert num_conflict_pairs(explicit_cores) == num_conflict_pairs(symbolic_cores)
    # mask-level scoring is explicit-only by nature
    assert right.states_mask is None
    with pytest.raises(TypeError):
        separation_gain(right, 0b1)


# ---------------------------------------------------------------------- #
# The tentpole guard: sg-bdd never materialises the explicit state list
# ---------------------------------------------------------------------- #
def test_sg_bdd_never_builds_the_state_graph(monkeypatch):
    def forbidden(*_args, **_kwargs):
        raise AssertionError("sg-bdd must not build the explicit State Graph")

    monkeypatch.setattr(spaces_explicit, "build_state_graph", forbidden)
    monkeypatch.setattr(stategraph_module, "build_state_graph", forbidden)
    stg = benchmark_by_name("nowick").build()
    result = synthesize(stg, method="sg-bdd")
    assert result.engine == "bdd"
    assert result.literal_count > 0
    assert result.details.state_graph is None


def test_sg_bdd_synthesis_is_verifiable():
    for name in ("nowick", "sendr-done", "rcv-setup"):
        stg = benchmark_by_name(name).build()
        result = synthesize(stg, method="sg-bdd")
        explicit = synthesize(stg, method="sg-explicit")
        assert result.literal_count == explicit.literal_count
        check = verify_implementation(stg, result.implementation)
        assert check.ok, check.errors


def test_engine_parameter_overrides_method():
    stg = benchmark_by_name("nowick").build()
    result = synthesize(stg, method="sg-explicit", engine="bdd")
    assert result.engine == "bdd"
    assert result.details.state_graph is None
    result = synthesize(stg, method="sg-bdd", engine="explicit")
    assert result.engine == "explicit"
    assert result.details.state_graph is not None


# ---------------------------------------------------------------------- #
# max_states regression: the sg-bdd path honours the caller's bound
# (the old rebuild-via-BDD path silently overrode it with the marking
# count, so the limit could never fire)
# ---------------------------------------------------------------------- #
def test_sg_bdd_honours_max_states():
    stg = muller_pipeline(6)  # 256 states
    with pytest.raises(StateSpaceLimitExceeded):
        synthesize(stg, method="sg-bdd", max_states=10)
    # a budget above the state count synthesises normally
    result = synthesize(stg, method="sg-bdd", max_states=1000)
    assert result.num_states == 256


def test_symbolic_space_max_states_bound():
    with pytest.raises(StateSpaceLimitExceeded):
        SymbolicStateSpace(muller_pipeline(6), max_states=100)
    space = SymbolicStateSpace(muller_pipeline(6), max_states=256)
    assert space.num_states == 256


def test_explicit_space_max_states_bound():
    with pytest.raises(StateSpaceLimitExceeded):
        ExplicitStateSpace(muller_pipeline(6), max_states=100)


def test_build_state_space_rejects_unknown_engine():
    with pytest.raises(ValueError):
        build_state_space(muller_pipeline(2), engine="quantum")


def test_symbolic_space_scales_past_explicit_budget():
    """The acceptance workload: CSC of muller_pipeline(16) symbolically.

    262144 states -- beyond the 200k default enumeration budget of the
    explicit engine -- checked without materialising any of them.
    """
    stg = muller_pipeline(16)
    with pytest.raises(StateSpaceLimitExceeded):
        build_state_space(stg, engine="explicit", max_states=200000)
    space = build_state_space(stg, engine="bdd")
    assert space.num_states == 262144
    assert space.check_csc().satisfied
    assert space.check_usc().satisfied
