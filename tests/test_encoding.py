"""Tests for repro.encoding: conflict cores, insertion regions, resolution.

Covers the whole encoding pipeline on the non-CSC generators (the VME-bus
read-cycle controller and the round-robin arbiter family): core grouping
over packed code words, phase-labelled insertion regions, the greedy
insert-and-validate loop, the projection-conformance check, and the
end-to-end detect -> insert -> synthesise -> simulate flow the subsystem
exists for.
"""

import pytest

from repro.core import popcount
from repro.encoding import (
    apply_insertion,
    candidate_regions,
    conflict_cores,
    estimate_cost,
    fresh_signal_name,
    legal_splice_points,
    num_conflict_pairs,
    projection_conforms,
    resolve_csc,
    separation_gain,
)
from repro.sim import simulate_implementation
from repro.stategraph import build_state_graph, check_csc, check_output_persistency
from repro.stg import (
    SignalType,
    csc_arbiter,
    csc_conflict_example,
    paper_example,
    parse_g,
    vme_bus_controller,
    write_g,
)
from repro.synthesis import synthesize

NON_CSC_BUILDERS = [
    csc_conflict_example,
    vme_bus_controller,
    lambda: csc_arbiter(2),
    lambda: csc_arbiter(3),
    lambda: csc_arbiter(4),
]


# ---------------------------------------------------------------------- #
# Conflict cores
# ---------------------------------------------------------------------- #
def test_conflict_cores_match_check_csc_pairs():
    for build in NON_CSC_BUILDERS:
        graph = build_state_graph(build())
        cores = conflict_cores(graph)
        assert num_conflict_pairs(cores) == check_csc(graph).num_conflicts


def test_conflict_cores_empty_on_csc_clean_graph():
    graph = build_state_graph(paper_example())
    assert conflict_cores(graph) == []


def test_conflict_core_groups_partition_the_core():
    graph = build_state_graph(csc_arbiter(4))
    cores = conflict_cores(graph)
    assert cores, "csc_arbiter(4) must have a conflict core"
    for core in cores:
        union = 0
        for group in core.groups:
            assert union & group == 0  # groups are disjoint
            union |= group
        assert union == core.states_mask
        assert len(core.groups) >= 2
        # Every state in the core carries the core's code word.
        for state in range(graph.num_states):
            if (core.states_mask >> state) & 1:
                assert graph.packed_code_of(state) == core.code_word


def test_arbiter_core_is_n_way():
    for clients in (2, 3, 4):
        graph = build_state_graph(csc_arbiter(clients))
        cores = conflict_cores(graph)
        sizes = sorted(len(core.groups) for core in cores)
        assert sizes[-1] == clients  # the "request pending" code, n ways


def test_separation_gain_counts_cross_group_pairs():
    graph = build_state_graph(csc_conflict_example())
    (core,) = conflict_cores(graph)
    assert core.num_pairs == 1
    left, right = core.groups
    assert separation_gain(core, left) == 1
    assert separation_gain(core, right) == 1
    assert separation_gain(core, 0) == 0
    assert separation_gain(core, core.states_mask) == 0  # both inside


# ---------------------------------------------------------------------- #
# Insertion regions
# ---------------------------------------------------------------------- #
def test_legal_splice_points_exclude_input_delays():
    stg = vme_bus_controller()
    points = set(legal_splice_points(stg))
    # lds+ feeds ldtack+ (input), dtack+ feeds dsr- (input): illegal.
    assert "lds+" not in points
    assert "dtack+" not in points
    assert "lds-" not in points
    assert "dtack-" not in points
    # d- feeds dtack- and lds- (outputs): legal.
    assert "d-" in points
    assert "dsr+" in points


def test_candidate_regions_phase_labelling_is_exact():
    """The packed mask must equal a brute-force phase computation."""
    stg = vme_bus_controller()
    graph = build_state_graph(stg)
    for region in candidate_regions(graph):
        # Brute force: propagate the phase over edges until fixpoint.
        phase = {}
        changed = True
        while changed:
            changed = False
            for source, transition, target in graph.edges:
                if transition == region.t_on:
                    expect = {source: 0, target: 1}
                elif transition == region.t_off:
                    expect = {source: 1, target: 0}
                elif source in phase and target not in phase:
                    expect = {target: phase[source]}
                elif target in phase and source not in phase:
                    expect = {source: phase[target]}
                else:
                    continue
                for state, value in expect.items():
                    assert phase.get(state, value) == value, region
                    if state not in phase:
                        phase[state] = value
                        changed = True
        for state in range(graph.num_states):
            assert phase[state] == (region.mask_on >> state) & 1, region


def test_candidate_regions_alternation_required():
    """Concurrent on/off transitions are rejected by phase labelling."""
    stg = paper_example()
    graph = build_state_graph(stg)
    # b+ (from p2) and c+ (from p3) fire concurrently after a+; no region
    # may use that pair in either role.
    for region in candidate_regions(graph):
        assert {region.t_on, region.t_off} != {"b+", "c+/1"}


def test_candidate_regions_are_deterministic():
    graph = build_state_graph(csc_arbiter(3))
    first = [(r.t_on, r.t_off, r.mask_on) for r in candidate_regions(graph)]
    second = [(r.t_on, r.t_off, r.mask_on) for r in candidate_regions(graph)]
    assert first == second


def test_estimate_cost_positive():
    graph = build_state_graph(vme_bus_controller())
    regions = candidate_regions(graph)
    assert regions
    assert all(estimate_cost(graph, region) > 0 for region in regions[:4])


# ---------------------------------------------------------------------- #
# STG rewriting
# ---------------------------------------------------------------------- #
def test_apply_insertion_declares_internal_signal():
    stg = csc_conflict_example()
    graph = build_state_graph(stg)
    region = candidate_regions(graph)[0]
    rewritten = apply_insertion(stg, region, "csc0")
    assert rewritten.signal_type("csc0") is SignalType.INTERNAL
    assert "csc0" in rewritten.implementable_signals
    assert "csc0+" in rewritten.transitions
    assert "csc0-" in rewritten.transitions
    # The original is untouched.
    assert "csc0" not in stg.signals


def test_apply_insertion_rejects_existing_signal():
    stg = csc_conflict_example()
    graph = build_state_graph(stg)
    region = candidate_regions(graph)[0]
    with pytest.raises(ValueError):
        apply_insertion(stg, region, "x")


def test_fresh_signal_name_skips_taken_names():
    stg = csc_conflict_example()
    assert fresh_signal_name(stg) == "csc0"
    stg.add_signal("csc0", SignalType.INTERNAL, initial=0)
    assert fresh_signal_name(stg) == "csc1"


def test_apply_insertion_splices_on_event_boundary():
    """The new transition takes over the postset of its splice point."""
    stg = csc_conflict_example()
    graph = build_state_graph(stg)
    region = candidate_regions(graph)[0]
    rewritten = apply_insertion(stg, region, "csc0")
    old_postset = set(stg.net.postset(region.t_on))
    assert set(rewritten.net.postset("csc0+")) == old_postset
    (bridge,) = rewritten.net.postset(region.t_on)
    assert rewritten.net.place_postset(bridge) == {"csc0+"}


# ---------------------------------------------------------------------- #
# resolve_csc end to end
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "build, budget, expected_signals",
    [
        (csc_conflict_example, 3, 1),
        (vme_bus_controller, 3, 1),
        (lambda: csc_arbiter(2), 3, 1),
        (lambda: csc_arbiter(3), 3, 2),
        (lambda: csc_arbiter(4), 3, 2),
    ],
    ids=["csc_conflict", "vme_read", "arbiter2", "arbiter3", "arbiter4"],
)
def test_resolve_csc_resolves_within_budget(build, budget, expected_signals):
    stg = build()
    result = resolve_csc(stg, max_signals=budget)
    assert result.resolved
    assert result.conflicts_after == 0
    assert result.num_inserted == expected_signals
    assert check_csc(result.graph).satisfied
    # Inserted signals are internal and declared on the rewritten STG only.
    for signal in result.inserted:
        assert result.stg.signal_type(signal) is SignalType.INTERNAL
        assert signal not in stg.signals
    assert result.projection is not None and result.projection.ok


def test_resolve_csc_noop_on_clean_spec():
    stg = paper_example()
    result = resolve_csc(stg)
    assert result.resolved
    assert result.inserted == []
    assert result.stg is stg
    assert result.conflicts_before == 0


def test_resolve_csc_respects_budget():
    result = resolve_csc(csc_arbiter(8), max_signals=1)
    assert not result.resolved
    assert result.num_inserted == 1
    assert 0 < result.conflicts_after < result.conflicts_before


def test_resolve_csc_is_deterministic():
    first = resolve_csc(csc_arbiter(4), seed=7)
    second = resolve_csc(csc_arbiter(4), seed=7)
    assert first.inserted == second.inserted
    assert write_g(first.stg) == write_g(second.stg)


def test_resolve_csc_preserves_output_persistency():
    for build in NON_CSC_BUILDERS:
        result = resolve_csc(build())
        assert result.resolved
        assert check_output_persistency(result.graph) == []


def test_resolved_stgs_stay_on_packed_engine():
    for build in NON_CSC_BUILDERS:
        result = resolve_csc(build())
        graph = build_state_graph(result.stg, packed=True)
        assert graph.is_packed


def test_projection_conformance_rejects_broken_rewrite():
    """A rewrite that genuinely changes visible behaviour must be caught.

    The original alternates ``x`` and ``y`` rounds; the broken "resolution"
    answers every request with ``x``, so its second round produces ``x+``
    where the specification only allows ``y+``.
    """
    original = csc_conflict_example()
    broken = parse_g(
        """
.model broken
.inputs a
.outputs x y
.internal h
.graph
a+ x+
x+ h+
h+ a-
a- x-
x- h-
h- a+
.marking { <h-,a+> }
.initial_state a=0 x=0 y=0 h=0
"""
    )
    report = projection_conforms(original, broken, ["h"])
    assert not report.ok
    assert any("x+" in failure for failure in report.failures)
    # The hidden signal itself never triggers a failure report.
    assert not any("h" in failure.split()[0] for failure in report.failures)


# ---------------------------------------------------------------------- #
# End to end: resolve -> synthesise -> simulate
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("method", ["unfolding-approx", "sg-explicit"])
@pytest.mark.parametrize(
    "build", [vme_bus_controller, lambda: csc_arbiter(4)], ids=["vme_read", "arbiter4"]
)
def test_end_to_end_synthesis_of_resolved_specs(build, method):
    stg = build()
    result = synthesize(stg, method=method, resolve_encoding=True)
    assert result.csc_resolved
    assert 0 < result.csc_signals_added <= 3
    implementation = result.implementation
    assert implementation.csc_conflicts == []
    # Every implementable signal of the resolved spec got a cover.
    resolved_stg = result.encoding.stg
    implemented = {gate.signal for gate in implementation}
    assert implemented == set(resolved_stg.implementable_signals)
    assert implementation.total_literals > 0
    # The circuit executes hazard-free and conformant against the resolved
    # spec, and its visible behaviour projects onto the original one.
    exploration = simulate_implementation(resolved_stg, implementation)
    assert exploration.verdict() == "ok"
    projection = projection_conforms(stg, resolved_stg, result.encoding.inserted)
    assert projection.ok


def test_synthesize_without_resolution_keeps_conflicts():
    result = synthesize(vme_bus_controller(), method="sg-explicit")
    assert not result.csc_resolved
    assert result.csc_signals_added == 0
    assert result.implementation.has_csc_conflict


def test_roundtrip_of_resolved_stg_preserves_signal_kinds():
    """Satellite: .g writer/parser round-trip with inserted internal signals."""
    result = resolve_csc(vme_bus_controller())
    text = write_g(result.stg)
    assert ".internal csc0" in text
    back = parse_g(text)
    assert back.signal_type("csc0") is SignalType.INTERNAL
    assert back.input_signals == result.stg.input_signals
    assert back.output_signals == result.stg.output_signals
    assert back.internal_signals == result.stg.internal_signals
    # Behaviour survives the round trip: same reachable codes and CSC verdict.
    graph = build_state_graph(back)
    assert graph.reachable_packed_codes() == result.graph.reachable_packed_codes()
    assert check_csc(graph).satisfied
    # And the re-read STG still projects onto the original specification.
    assert projection_conforms(vme_bus_controller(), back, ["csc0"]).ok


def test_popcount_mask_bookkeeping():
    graph = build_state_graph(csc_arbiter(3))
    cores = conflict_cores(graph)
    for core in cores:
        assert core.num_states == popcount(core.states_mask)
        assert core.num_states == sum(popcount(g) for g in core.groups)
