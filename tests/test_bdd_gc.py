"""BDD storage management: GC, sifting reorder, saturation fixed point.

The manager's maintenance machinery must be invisible to callers: a
mark-and-sweep pass may renumber nodes but every surviving id (through the
returned remap) must denote the same Boolean function; a sifting pass may
permute levels but node ids are preserved outright; and the saturation
fixed point -- with GC and reorder checkpoints forced at every single
firing -- must reach exactly the state space of the historical chaining
loop on every specification we ship.
"""

import itertools

import pytest

from repro.bdd.manager import BDD, _CountingCache
from repro.bdd.reachability import FIXPOINTS, SymbolicNet
from repro.petrinet import StateSpaceLimitExceeded
from repro.spaces import SymbolicStateSpace
from repro.stg import muller_pipeline, table1_suite


def _specs():
    """(id, builder) pairs: the Table 1 suite plus muller 2..8."""
    pairs = [(entry.name, entry.build) for entry in table1_suite()]
    for stages in range(2, 9):
        pairs.append(
            ("muller_%d" % stages, lambda stages=stages: muller_pipeline(stages))
        )
    return pairs


SPECS = _specs()
SPEC_IDS = [spec_id for spec_id, _ in SPECS]
SPEC_BUILDERS = [builder for _, builder in SPECS]


def _assignments(names):
    for bits in itertools.product((False, True), repeat=len(names)):
        yield dict(zip(names, bits))


def _truth_table(bdd, f, names):
    return [bdd.evaluate(f, assignment) for assignment in _assignments(names)]


# --------------------------------------------------------------------- #
# Mark-and-sweep GC
# --------------------------------------------------------------------- #
def test_collect_garbage_shrinks_store_and_preserves_function():
    names = list("abcdef")
    bdd = BDD(names)
    f = bdd.disj(
        bdd.conj(bdd.var("a"), bdd.var("b")),
        bdd.conj(bdd.var("c"), bdd.var("d")),
    )
    # Litter the store with dead intermediates.
    for name in names:
        bdd.xor(f, bdd.var(name))
    before = bdd.num_nodes
    truth = _truth_table(bdd, f, names)
    remap = bdd.collect_garbage([f])
    assert bdd.num_nodes < before
    assert bdd.gc_runs == 1
    assert bdd.nodes_reclaimed == before - bdd.num_nodes
    f = remap[f]
    assert _truth_table(bdd, f, names) == truth
    # After a sweep everything in the store is live.
    assert bdd.num_live_nodes([f]) == bdd.num_nodes


def test_pinned_roots_survive_and_pins_nest():
    bdd = BDD(["a", "b", "c"])
    f = bdd.conj(bdd.var("a"), bdd.var("b"))
    g = bdd.conj(bdd.var("b"), bdd.var("c"))
    bdd.pin(f)
    bdd.pin(f)  # nested pin
    remap = bdd.collect_garbage()
    assert f in remap
    assert g not in remap  # unpinned internal node is swept
    f = remap[f]
    bdd.unpin(f)  # one pin left: still a root
    remap = bdd.collect_garbage()
    assert f in remap
    f = remap[f]
    bdd.unpin(f)
    remap = bdd.collect_garbage()
    assert f not in remap
    with pytest.raises(KeyError):
        bdd.unpin(f)


def test_counting_caches_survive_garbage_collection():
    bdd = BDD(list("abcd"))
    f = bdd.conj(bdd.var("a"), bdd.var("b"))
    bdd.enable_stats()
    g = bdd.disj(f, bdd.var("c"))
    before = bdd.stats()
    assert before["ite_cache_lookups"] > 0
    remap = bdd.collect_garbage([g])
    # The swapped-in counting caches keep their identity and totals; only
    # the memoised entries (now stale ids) are dropped.
    assert isinstance(bdd._ite_cache, _CountingCache)
    after = bdd.stats()
    assert after["stats_enabled"]
    assert after["ite_cache_lookups"] >= before["ite_cache_lookups"]
    assert after["ite_cache_entries"] == 0
    bdd.disj(remap[g], bdd.var("d"))
    assert bdd.stats()["ite_cache_lookups"] > after["ite_cache_lookups"]


# --------------------------------------------------------------------- #
# Sifting reorder
# --------------------------------------------------------------------- #
def _pathological_order(n):
    """f = OR(x_i & y_i) with all x's above all y's: exponential in n."""
    bdd = BDD(["x%d" % i for i in range(n)] + ["y%d" % i for i in range(n)])
    f = bdd.disj_all(
        bdd.conj(bdd.var("x%d" % i), bdd.var("y%d" % i)) for i in range(n)
    )
    return bdd, f


def test_reorder_preserves_ids_and_shrinks_pathological_order():
    bdd, f = _pathological_order(4)
    names = list(bdd.variables)
    truth = _truth_table(bdd, f, names)
    before = bdd.num_live_nodes([f])
    after = bdd.reorder(roots=[f])
    assert after < before  # sifting must find a (near-)interleaved order
    assert bdd.reorder_passes == 1
    # Node ids are preserved: the *same* id still denotes f.
    assert _truth_table(bdd, f, names) == truth


def test_reorder_keeps_groups_adjacent():
    # Twin blocks must be adjacent going in; the pass keeps them welded.
    names = []
    for i in range(3):
        names += ["x%d" % i, "y%d" % i]
    bdd = BDD(names)
    f = bdd.disj_all(
        bdd.conj(bdd.var("x%d" % i), bdd.var("y%d" % i)) for i in range(3)
    )
    groups = [["x%d" % i, "y%d" % i] for i in range(3)]
    truth = _truth_table(bdd, f, list(bdd.variables))
    bdd.reorder(roots=[f], groups=[list(g) for g in groups])
    for pair in groups:
        positions = sorted(bdd.variables.index(name) for name in pair)
        assert positions[1] - positions[0] == 1
    assert _truth_table(bdd, f, list(bdd.variables)) == truth


def test_reorder_rejects_non_contiguous_group():
    bdd = BDD(["a", "b", "c"])
    f = bdd.conj(bdd.var("a"), bdd.var("c"))
    with pytest.raises(ValueError):
        bdd.reorder(roots=[f], groups=[["a", "c"]])


def test_gc_after_reorder_roundtrip():
    # Reorder leaves ids non-topological; the GC's post-order mark must
    # still rebuild a correct store afterwards.
    bdd, f = _pathological_order(4)
    names = list(bdd.variables)
    truth = _truth_table(bdd, f, names)
    bdd.reorder(roots=[f])
    remap = bdd.collect_garbage([f])
    f = remap[f]
    assert _truth_table(bdd, f, names) == truth
    assert bdd.num_live_nodes([f]) == bdd.num_nodes


# --------------------------------------------------------------------- #
# Saturation vs chaining fixed point
# --------------------------------------------------------------------- #
def test_unknown_fixpoint_rejected():
    stg = muller_pipeline(2)
    with pytest.raises(ValueError):
        SymbolicNet(stg.net, stg=stg, fixpoint="jacobi")
    assert set(FIXPOINTS) == {"saturation", "chaining"}


@pytest.mark.parametrize("builder", SPEC_BUILDERS, ids=SPEC_IDS)
def test_saturation_matches_chaining(builder):
    stg = builder()
    saturation = SymbolicNet(stg.net, stg=stg, fixpoint="saturation")
    chaining = SymbolicNet(stg.net, stg=stg, fixpoint="chaining")
    saturation.reachable_set()
    chaining.reachable_set()
    assert saturation.count_states() == chaining.count_states()
    assert saturation.count_markings() == chaining.count_markings()


@pytest.mark.parametrize("stages", [4, 6])
def test_forced_gc_and_reorder_mid_fixpoint(stages):
    # Force a GC-eligibility check and a sifting pass at *every* saturation
    # checkpoint: the reached set must be unaffected no matter where in the
    # fixed point the store is rebuilt or the order permuted.
    stg = muller_pipeline(stages)
    reference = SymbolicNet(stg.net, stg=stg, fixpoint="chaining")
    reference.reachable_set()

    stressed = SymbolicNet(stg.net, stg=stg, fixpoint="saturation")
    original = stressed._maintain

    def maintain(reached, groups):
        stressed._gc_threshold = 0
        stressed._reorder_threshold = 0
        return original(reached, groups)

    stressed._maintain = maintain
    stressed.reachable_set()
    assert stressed.bdd.gc_runs > 0
    assert stressed.bdd.reorder_passes > 0
    assert stressed.count_states() == reference.count_states()
    assert stressed.count_markings() == reference.count_markings()


def test_saturation_respects_max_states():
    stg = muller_pipeline(6)
    engine = SymbolicNet(stg.net, stg=stg, fixpoint="saturation", max_states=5)
    with pytest.raises(StateSpaceLimitExceeded):
        engine.reachable_set()


@pytest.mark.parametrize("fixpoint", FIXPOINTS)
def test_fixpoints_respect_max_iterations(fixpoint):
    stg = muller_pipeline(6)
    engine = SymbolicNet(stg.net, stg=stg, fixpoint=fixpoint, max_iterations=1)
    with pytest.raises(RuntimeError):
        engine.reachable_set()


# --------------------------------------------------------------------- #
# Through the state-space protocol
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "builder",
    SPEC_BUILDERS[:4] + [lambda: muller_pipeline(5)],
    ids=SPEC_IDS[:4] + ["muller_5"],
)
def test_state_space_fixpoints_agree_on_coding(builder):
    saturation = SymbolicStateSpace(builder(), fixpoint="saturation")
    chaining = SymbolicStateSpace(builder(), fixpoint="chaining")
    assert saturation.num_states == chaining.num_states
    assert saturation.reachable_code_words() == chaining.reachable_code_words()
    usc_s, usc_c = saturation.check_usc(), chaining.check_usc()
    csc_s, csc_c = saturation.check_csc(), chaining.check_csc()
    assert usc_s.satisfied == usc_c.satisfied
    assert csc_s.satisfied == csc_c.satisfied


def test_state_space_surfaces_maintenance_counters():
    space = SymbolicStateSpace(muller_pipeline(8))
    assert space.peak_bdd_nodes >= space.num_bdd_nodes
    assert space.gc_runs >= 0
    assert space.nodes_reclaimed >= 0
    assert space.reorder_passes >= 0
    # muller_8 crosses the GC threshold, so at least one sweep must have
    # happened and reclaimed the fixpoint's intermediate results.
    assert space.gc_runs > 0
    assert space.nodes_reclaimed > 0
