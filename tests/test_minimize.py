"""Unit tests for the two-level minimisers."""

import pytest

from repro.boolean import Cover, Cube, espresso, quine_mccluskey


def cover(*rows):
    return Cover.from_strings(list(rows))


def check_correct(result_cover, on, dc):
    """The minimised cover must contain the on-set and avoid the off-set."""
    on_minterms = on.minterms()
    dc_minterms = dc.minterms()
    result_minterms = result_cover.minterms()
    assert on_minterms <= result_minterms
    assert result_minterms <= (on_minterms | dc_minterms)


def test_espresso_paper_example():
    # On-set of signal b from Figure 1: minimises to a + c (2 literals).
    on = cover("100", "110", "101", "111", "011", "001")
    dc = Cover.empty(3)
    result = espresso(on, dc)
    check_correct(result.cover, on, dc)
    assert result.cover.literal_count == 2


def test_espresso_uses_dont_cares():
    on = cover("100")
    dc = cover("110", "101", "111")
    result = espresso(on, dc)
    check_correct(result.cover, on, dc)
    assert result.cover.literal_count == 1  # expands to "1--"


def test_espresso_empty_on_set():
    result = espresso(Cover.empty(4))
    assert result.cover.is_empty()


def test_espresso_with_explicit_off_set():
    on = cover("100", "110")
    off = cover("0--")
    result = espresso(on, off=off)
    assert on.minterms() <= result.cover.minterms()
    assert not result.cover.intersects(off)


def test_espresso_never_changes_function_on_care_set():
    on = cover("0000", "0001", "0011", "0111", "1111", "1000")
    dc = cover("1100")
    result = espresso(on, dc)
    check_correct(result.cover, on, dc)


def test_quine_mccluskey_exact_simple():
    on = cover("100", "110", "101", "111", "011", "001")
    result = quine_mccluskey(on)
    assert result.minterms() == on.minterms()
    assert result.literal_count == 2


def test_quine_mccluskey_with_dc():
    on = cover("0000", "1000")
    dc = cover("0100", "1100")
    result = quine_mccluskey(on, dc)
    assert on.minterms() <= result.minterms() <= on.minterms() | dc.minterms()
    assert result.literal_count == 2  # c' d'


def test_quine_mccluskey_rejects_large_spaces():
    with pytest.raises(ValueError):
        quine_mccluskey(Cover.empty(20).union(Cover.universe(20)))


def test_espresso_not_worse_than_input():
    on = cover("1010", "1011", "1000", "1001")
    result = espresso(on)
    assert result.cover.literal_count <= on.literal_count
    check_correct(result.cover, on, Cover.empty(4))


def test_espresso_matches_quine_mccluskey_quality_on_small_functions():
    on = cover("000", "010", "011", "111")
    dc = cover("100")
    heuristic = espresso(on, dc).cover
    exact = quine_mccluskey(on, dc)
    check_correct(heuristic, on, dc)
    # The heuristic may be slightly worse but never better than exact.
    assert heuristic.literal_count >= exact.literal_count
    assert heuristic.literal_count <= exact.literal_count + 2
