"""Tests for the STG generators and the Table 1 benchmark suite."""

import pytest

from repro.stategraph import build_state_graph, check_csc, check_output_persistency
from repro.stg import (
    benchmark_by_name,
    check_consistency,
    choice_controller,
    counterflow_pipeline,
    csc_arbiter,
    csc_conflict_example,
    example_suite,
    figure4_example,
    muller_pipeline,
    paper_example,
    parallel_handshake,
    sequential_controller,
    table1_suite,
    vme_bus_controller,
)


def test_paper_example_state_graph_matches_figure1():
    graph = build_state_graph(paper_example())
    assert graph.num_states == 8
    codes = {"".join(map(str, code)) for code in graph.codes}
    assert codes == {"000", "100", "110", "101", "111", "011", "001", "010"}


def test_muller_pipeline_sizes_and_properties():
    for stages in (1, 2, 4):
        stg = muller_pipeline(stages)
        assert stg.num_signals == stages + 2
        assert check_consistency(stg).consistent
        graph = build_state_graph(stg)
        assert check_csc(graph).satisfied
        assert not check_output_persistency(graph)


def test_muller_pipeline_state_graph_grows_exponentially():
    sizes = [build_state_graph(muller_pipeline(n)).num_states for n in (2, 4, 6)]
    assert sizes[1] > 2 * sizes[0]
    assert sizes[2] > 2 * sizes[1]


def test_muller_pipeline_requires_positive_stages():
    with pytest.raises(Exception):
        muller_pipeline(0)


def test_counterflow_pipeline_has_34_signals():
    stg = counterflow_pipeline(15)
    assert stg.num_signals == 34


def test_parallel_handshake_properties():
    stg = parallel_handshake("hs", [3, 2])
    assert stg.num_signals == 2 + 5
    graph = build_state_graph(stg)
    assert check_csc(graph).satisfied
    assert not check_output_persistency(graph)


def test_sequential_controller_is_a_single_cycle():
    stg = sequential_controller("seq", 5)
    graph = build_state_graph(stg)
    assert graph.num_states == 2 * 5
    assert check_csc(graph).satisfied


def test_choice_controller_is_implementable():
    graph = build_state_graph(choice_controller())
    assert check_csc(graph).satisfied
    assert not check_output_persistency(graph)
    assert not choice_controller().net.is_marked_graph()


def test_figure4_example_properties():
    graph = build_state_graph(figure4_example())
    assert check_csc(graph).satisfied
    assert graph.num_states == 54


def test_csc_conflict_example_violates_csc():
    graph = build_state_graph(csc_conflict_example())
    assert not check_csc(graph).satisfied


def test_vme_bus_controller_has_the_classic_conflict():
    stg = vme_bus_controller()
    assert stg.input_signals == ["dsr", "ldtack"]
    assert sorted(stg.output_signals) == ["d", "dtack", "lds"]
    assert check_consistency(stg).consistent
    graph = build_state_graph(stg)
    assert not check_output_persistency(graph)
    report = check_csc(graph)
    assert report.num_conflicts == 1
    ((left, right),) = report.conflicts
    # The conflicting states share a code but excite d+ vs lds-.
    assert graph.packed_code_of(left) == graph.packed_code_of(right)
    excited = {
        frozenset(graph.excited_signals(left)),
        frozenset(graph.excited_signals(right)),
    }
    assert excited == {frozenset({"d"}), frozenset({"lds"})}


def test_csc_arbiter_family_scales_linearly_with_conflicts():
    sizes = []
    for clients in (2, 3, 4, 6):
        stg = csc_arbiter(clients)
        assert stg.num_signals == clients + 1
        assert check_consistency(stg).consistent
        graph = build_state_graph(stg)
        sizes.append(graph.num_states)
        report = check_csc(graph)
        # n-way core: all "request pending" states pairwise conflicting.
        assert report.num_conflicts == clients * (clients - 1) // 2
        assert not check_output_persistency(graph)
    assert sizes == [4 * n for n in (2, 3, 4, 6)]


def test_csc_arbiter_requires_two_clients():
    with pytest.raises(Exception):
        csc_arbiter(1)


def test_table1_suite_signal_counts_match_paper():
    entries = table1_suite()
    assert len(entries) == 21
    assert sum(e.expected_signals for e in entries) == 228  # Table 1 total
    for entry in entries:
        stg = entry.build()
        assert stg.num_signals == entry.expected_signals, entry.name


def test_table1_suite_is_consistent_and_csc_compliant():
    # Spot-check a few entries across the size range (full check is in the
    # benchmark harness; here we keep the test fast).
    for name in ("sendr-done", "nowick", "alloc-outbound", "sbuf-send-ctl"):
        stg = benchmark_by_name(name).build()
        graph = build_state_graph(stg)
        assert check_csc(graph).satisfied, name
        assert not check_output_persistency(graph), name


def test_benchmark_by_name_unknown():
    with pytest.raises(KeyError):
        benchmark_by_name("does-not-exist")


def test_example_suite_builds():
    for entry in example_suite():
        stg = entry.build()
        assert stg.num_signals == entry.expected_signals
