"""Unit tests for the cube algebra."""

import pytest

from repro.boolean import Cube, CubeError


def test_from_string_roundtrip():
    cube = Cube.from_string("1-0")
    assert cube.to_string() == "1-0"
    assert cube.value(0) == 1
    assert cube.value(1) is None
    assert cube.value(2) == 0


def test_invalid_character_rejected():
    with pytest.raises(CubeError):
        Cube.from_string("12-")


def test_conflicting_masks_rejected():
    with pytest.raises(CubeError):
        Cube(3, ones=0b001, zeros=0b001)


def test_full_cube_covers_everything():
    cube = Cube.full(3)
    assert cube.is_full()
    assert cube.num_minterms == 8
    for minterm in range(8):
        assert cube.covers_minterm(minterm)


def test_minterm_cube_is_fully_specified():
    cube = Cube.from_minterm(3, 0b101)
    assert cube.is_minterm()
    assert cube.to_string() == "101"
    assert cube.num_minterms == 1


def test_intersection_and_emptiness():
    a = Cube.from_string("1-0")
    b = Cube.from_string("11-")
    c = a.intersect(b)
    assert c is not None and c.to_string() == "110"
    d = Cube.from_string("0--")
    assert a.intersect(d) is None
    assert not a.intersects(d)


def test_containment():
    big = Cube.from_string("1--")
    small = Cube.from_string("1-0")
    assert big.contains(small)
    assert not small.contains(big)
    assert big.contains(big)


def test_distance_and_consensus():
    a = Cube.from_string("10-")
    b = Cube.from_string("11-")
    assert a.distance(b) == 1
    consensus = a.consensus(b)
    assert consensus is not None and consensus.to_string() == "1--"
    far = Cube.from_string("01-")
    assert a.distance(far) == 2
    assert a.consensus(far) is None


def test_supercube():
    a = Cube.from_string("100")
    b = Cube.from_string("110")
    assert a.supercube(b).to_string() == "1-0"


def test_cofactor():
    cube = Cube.from_string("1-0")
    assert cube.cofactor(0, 1).to_string() == "--0"
    assert cube.cofactor(0, 0) is None
    assert cube.cofactor(1, 1).to_string() == "1-0"


def test_minterms_enumeration():
    cube = Cube.from_string("1-‐".replace("‐", "-"))
    minterms = set(Cube.from_string("1--").minterms())
    assert minterms == {0b001, 0b011, 0b101, 0b111}


def test_literals_and_counts():
    cube = Cube.from_string("1-01")
    assert dict(cube.literals()) == {0: 1, 2: 0, 3: 1}
    assert cube.num_literals == 3
    assert cube.num_minterms == 2


def test_expression_rendering():
    cube = Cube.from_string("1-0")
    assert cube.to_expression(["a", "b", "c"]) == "a c'"
    assert Cube.full(2).to_expression(["a", "b"]) == "1"


def test_with_literal_and_without_var():
    cube = Cube.from_string("1--")
    assert cube.with_literal(1, 0).to_string() == "10-"
    assert cube.with_literal(0, 0).to_string() == "0--"
    assert cube.without_var(0).to_string() == "---"


def test_complement_cubes_partition_space():
    cube = Cube.from_string("10-")
    complement = list(cube.complement_cubes())
    covered = set()
    for piece in complement:
        covered |= set(piece.minterms())
    assert covered == set(range(8)) - set(cube.minterms())


def test_space_mismatch_rejected():
    with pytest.raises(CubeError):
        Cube.from_string("1-").intersect(Cube.from_string("1--"))


def test_hash_and_equality():
    assert Cube.from_string("1-0") == Cube.from_string("1-0")
    assert len({Cube.from_string("1-0"), Cube.from_string("1-0")}) == 1
