"""Packed vs legacy representation equivalence suite.

The packed bitvector core (:mod:`repro.core`) is a pure fast path: on every
built-in benchmark of ``table1_suite()`` plus ``muller_pipeline(2..6)`` the
packed and legacy engines must produce identical state graphs, on-sets,
region covers, literal counts and simulator verdicts.

Cover equality is asserted on *every* entry; since the minimiser is a
deterministic function of the covers, it fully determines literal-count
equality.  The end-to-end dual synthesis (espresso included) additionally
runs on the entries where the wide-benchmark minimisation stays fast.
"""

import pytest

from repro.sim import simulate_implementation
from repro.stategraph import SignalRegions, build_state_graph, dc_set_cover
from repro.stategraph.regions import on_set_states
from repro.stg import muller_pipeline, table1_suite
from repro.stg.signals import Direction
from repro.synthesis import synthesize


def _specs():
    specs = [(entry.name, entry.build) for entry in table1_suite()]
    for stages in range(2, 7):
        specs.append(
            ("muller_pipeline_%d" % stages, lambda s=stages: muller_pipeline(s))
        )
    return specs


SPECS = _specs()
SPEC_IDS = [name for name, _build in SPECS]
SMALL = [
    (name, build)
    for name, build in SPECS
    if build().num_signals <= 12
]


@pytest.mark.parametrize("name,build", SPECS, ids=SPEC_IDS)
def test_state_graphs_identical(name, build):
    stg = build()
    packed = build_state_graph(stg, packed=True)
    legacy = build_state_graph(build(), packed=False)
    assert packed.is_packed and not legacy.is_packed
    assert packed.num_states == legacy.num_states
    assert packed.packed_codes == legacy.packed_codes
    assert packed.codes == legacy.codes
    assert [m.places for m in packed.markings] == [m.places for m in legacy.markings]
    assert packed.edges == legacy.edges
    for state in range(packed.num_states):
        assert packed.excited_plus_mask(state) == legacy.excited_plus_mask(state)
        assert packed.excited_minus_mask(state) == legacy.excited_minus_mask(state)


@pytest.mark.parametrize("name,build", SPECS, ids=SPEC_IDS)
def test_regions_and_covers_identical(name, build):
    stg = build()
    packed = build_state_graph(stg, packed=True)
    legacy = build_state_graph(build(), packed=False)
    assert set(dc_set_cover(packed).cubes) == set(dc_set_cover(legacy).cubes)
    for signal in stg.implementable_signals:
        rp = SignalRegions(packed, signal)
        rl = SignalRegions(legacy, signal)
        assert rp.on_states == rl.on_states
        assert rp.off_states == rl.off_states
        assert rp.er_plus == rl.er_plus and rp.er_minus == rl.er_minus
        assert set(rp.on_cover.cubes) == set(rl.on_cover.cubes)
        assert set(rp.off_cover.cubes) == set(rl.off_cover.cubes)
        assert set(rp.set_cover.cubes) == set(rl.set_cover.cubes)
        assert set(rp.reset_cover.cubes) == set(rl.reset_cover.cubes)


@pytest.mark.parametrize("name,build", SPECS, ids=SPEC_IDS)
def test_on_sets_match_reference_definition(name, build):
    """The mask-based on-set must equal the textbook definition computed
    directly from enabled transitions and signal values."""
    stg = build()
    graph = build_state_graph(stg)
    for signal in stg.implementable_signals:
        expected = set()
        for state in range(graph.num_states):
            value = graph.code_of(state)[stg.signal_index(signal)]
            rising = falling = False
            for transition, _target in graph.successors(state):
                label = stg.label_of(transition)
                if label is None or label.signal != signal:
                    continue
                if label.direction is Direction.PLUS:
                    rising = True
                else:
                    falling = True
            implied = (1 if rising else 0) if value == 0 else (0 if falling else 1)
            if implied:
                expected.add(state)
        assert on_set_states(graph, signal) == expected


@pytest.mark.parametrize(
    "name,build", SMALL, ids=[name for name, _build in SMALL]
)
def test_literal_counts_identical(name, build):
    stg = build()
    rp = synthesize(stg, method="sg-explicit", packed=True)
    rl = synthesize(build(), method="sg-explicit", packed=False)
    assert rp.literal_count == rl.literal_count
    assert sorted(rp.implementation.gates) == sorted(rl.implementation.gates)
    for signal, gate in rp.implementation.gates.items():
        other = rl.implementation.gates[signal]
        if gate.function is not None:
            assert set(gate.function.cover.cubes) == set(other.function.cover.cubes)
        else:
            assert set(gate.set_function.cover.cubes) == set(
                other.set_function.cover.cubes
            )
            assert set(gate.reset_function.cover.cubes) == set(
                other.reset_function.cover.cubes
            )


@pytest.mark.parametrize(
    "name,build", SMALL, ids=[name for name, _build in SMALL]
)
def test_simulator_verdicts_identical(name, build):
    stg = build()
    implementation = synthesize(stg, method="unfolding-approx").implementation
    if implementation.has_csc_conflict:
        pytest.skip("CSC conflict: nothing to simulate")
    packed = simulate_implementation(stg, implementation, packed=True)
    legacy = simulate_implementation(stg, implementation, packed=False)
    assert packed.verdict() == legacy.verdict()
    assert packed.num_states == legacy.num_states
    assert packed.num_events_fired == legacy.num_events_fired
    assert len(packed.hazards) == len(legacy.hazards)
    assert len(packed.violations) == len(legacy.violations)


def test_simulator_verdicts_identical_on_large_entries():
    """One wide benchmark exercises the packed simulator beyond SMALL."""
    entry = next(e for e in table1_suite() if e.name == "mp-forward-pkt")
    stg = entry.build()
    implementation = synthesize(stg, method="unfolding-approx").implementation
    packed = simulate_implementation(stg, implementation, packed=True)
    legacy = simulate_implementation(stg, implementation, packed=False)
    assert packed.verdict() == legacy.verdict()
    assert packed.num_states == legacy.num_states
