"""Round-trip tests for the ``.g`` writer: ``parse_g(write_g(stg))``.

Every built-in benchmark (the 21 Table 1 stand-ins plus the hand-written
examples) must survive a write/parse round trip with its signals, arcs and
initial marking intact.  Place names are not required to survive -- the
writer collapses implicit places into transition-to-transition arcs and the
parser re-creates them under fresh names -- so arcs and marking are compared
through a name-independent canonical form, and the smaller benchmarks are
additionally compared state-graph-to-state-graph.
"""

from collections import Counter

import pytest

from repro.stg import (
    STG,
    example_suite,
    parse_g,
    table1_suite,
    write_g,
)
from repro.stategraph import build_state_graph

ALL_ENTRIES = table1_suite() + example_suite()
SMALL_ENTRIES = [entry for entry in ALL_ENTRIES if entry.expected_signals <= 14]


def canonical_places(stg: STG):
    """Multiset of (preset, postset, tokens) triples -- place-name independent."""
    net = stg.net
    marking = stg.initial_marking
    return Counter(
        (
            frozenset(net.place_preset(place)),
            frozenset(net.place_postset(place)),
            marking[place],
        )
        for place in stg.places
    )


def roundtrip(stg: STG) -> STG:
    return parse_g(write_g(stg))


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=lambda e: e.name)
def test_roundtrip_preserves_signals(entry):
    stg = entry.build()
    back = roundtrip(stg)
    assert back.signal_types == stg.signal_types
    assert back.initial_values == stg.initial_values


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=lambda e: e.name)
def test_roundtrip_preserves_transitions(entry):
    stg = entry.build()
    back = roundtrip(stg)
    assert sorted(back.transitions) == sorted(stg.transitions)
    for transition in stg.transitions:
        assert back.label_of(transition) == stg.label_of(transition)


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=lambda e: e.name)
def test_roundtrip_preserves_arcs_and_marking(entry):
    stg = entry.build()
    back = roundtrip(stg)
    assert canonical_places(back) == canonical_places(stg)


@pytest.mark.parametrize("entry", SMALL_ENTRIES, ids=lambda e: e.name)
def test_roundtrip_preserves_behaviour(entry):
    """The state graphs of the original and round-tripped STGs coincide."""
    stg = entry.build()
    back = roundtrip(stg)
    graph = build_state_graph(stg)
    graph_back = build_state_graph(back)
    assert graph_back.num_states == graph.num_states
    assert graph_back.num_edges == graph.num_edges

    def edge_codes(g):
        # Codes keyed by signal name: the .g format groups signals by type,
        # so the round trip may permute the code vector's signal order.
        def named(code):
            return frozenset(zip(g.signals, code))

        return Counter(
            (named(g.codes[source]), transition, named(g.codes[target]))
            for source, transition, target in g.edges
        )

    assert edge_codes(graph_back) == edge_codes(graph)


def test_roundtrip_is_stable():
    """A second round trip reproduces the first one's text exactly."""
    for entry in example_suite():
        stg = entry.build()
        once = write_g(parse_g(write_g(stg)))
        twice = write_g(parse_g(once))
        assert once == twice


def test_roundtrip_of_resolved_stg_with_internal_signals():
    """Inserted internal signals survive the .g round trip as internals.

    The writer must declare them on a ``.internal`` line (not fold them into
    ``.outputs``) and the parser must restore the signal kind, so a resolved
    specification re-read from disk still knows which signals belong to the
    environment-visible interface.
    """
    from repro.encoding import resolve_csc
    from repro.stg import SignalType, csc_arbiter, vme_bus_controller
    from repro.stategraph import check_csc

    for build in (vme_bus_controller, lambda: csc_arbiter(4)):
        resolved = resolve_csc(build())
        assert resolved.inserted
        text = write_g(resolved.stg)
        declarations = {
            line.split()[0]: line.split()[1:]
            for line in text.splitlines()
            if line.startswith(".i") or line.startswith(".o")
        }
        assert set(resolved.inserted) <= set(declarations[".internal"])
        assert not set(resolved.inserted) & set(declarations[".outputs"])

        back = roundtrip(resolved.stg)
        assert back.signal_types == resolved.stg.signal_types
        for signal in resolved.inserted:
            assert back.signal_type(signal) is SignalType.INTERNAL
        assert canonical_places(back) == canonical_places(resolved.stg)
        graph = build_state_graph(back)
        assert check_csc(graph).satisfied
        assert (
            graph.reachable_packed_codes()
            == resolved.graph.reachable_packed_codes()
        )
