"""Legacy setup shim.

The project metadata (name, version, the ``repro-synth`` console script)
lives in ``pyproject.toml``; this file only exists so that
``python setup.py develop`` still works in offline environments that lack
the ``wheel`` package and therefore cannot take pip's PEP 660 editable
path.  Setuptools reads the ``[project]`` table from ``pyproject.toml``
either way.
"""

from setuptools import setup

setup()
